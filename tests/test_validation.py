"""Tests for trace-vs-profile validation."""

from dataclasses import replace

import numpy as np
import pytest

from repro.workloads.generator import generate_trace
from repro.workloads.registry import all_profiles, get_profile
from repro.workloads.validation import (
    TraceValidationError,
    measure_trace,
    validate_trace,
)


class TestMeasure:
    def test_fields_consistent(self):
        trace = generate_trace(get_profile("zeusmp"), 8000, seed=2)
        stats = measure_trace(trace)
        assert stats.n == 8000
        assert 0 <= stats.frac_load <= 1
        assert 0 <= stats.frac_stream_of_mem <= 1
        assert stats.mean_dep1_distance > 0
        assert 0.5 <= stats.majority_direction_accuracy <= 1.0


class TestValidate:
    @pytest.mark.parametrize("name", ["web_search", "zeusmp", "lbm", "gamess",
                                      "mcf", "libquantum", "perlbench"])
    def test_generated_traces_realize_profiles(self, name):
        profile = get_profile(name)
        trace = generate_trace(profile, 30000, seed=7)
        stats = validate_trace(trace, profile)
        assert stats.n == 30000

    def test_every_registered_profile_validates(self):
        for name, profile in sorted(all_profiles().items()):
            trace = generate_trace(profile, 12000, seed=11)
            validate_trace(trace, profile)

    def test_mismatched_profile_rejected(self):
        """A gamess trace must not pass as lbm (streaming signature)."""
        trace = generate_trace(get_profile("gamess"), 20000, seed=3)
        with pytest.raises(TraceValidationError, match="streaming"):
            validate_trace(trace, get_profile("lbm"))

    def test_predictability_mismatch_detected(self):
        profile = get_profile("gobmk")  # 0.88 predictability
        trace = generate_trace(profile, 20000, seed=3)
        wrong = replace(profile, branch_predictability=0.99)
        with pytest.raises(TraceValidationError, match="predictability"):
            validate_trace(trace, wrong)

    def test_error_lists_violations(self):
        trace = generate_trace(get_profile("gamess"), 20000, seed=3)
        try:
            validate_trace(trace, get_profile("lbm"))
        except TraceValidationError as error:
            assert error.workload == "lbm"
            assert len(error.violations) >= 1
        else:  # pragma: no cover
            pytest.fail("expected TraceValidationError")

    def test_structural_violations_propagate(self):
        trace = generate_trace(get_profile("gamess"), 2000, seed=3)
        corrupted = replace(trace, dep1=np.full(2000, -1, dtype=np.int64))
        with pytest.raises(ValueError):
            validate_trace(corrupted, get_profile("gamess"))
