"""Tests for the statistics helpers."""

import math

import pytest

from repro.util.stats import DistributionSummary, geometric_mean, percentile, summarize


class TestPercentile:
    def test_median_of_known_values(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        data = [10, 20, 30]
        assert percentile(data, 0) == 10
        assert percentile(data, 100) == 30

    def test_interpolation(self):
        assert percentile([0, 10], 50) == pytest.approx(5.0)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)
        with pytest.raises(ValueError):
            percentile([1, 2], -1)

    def test_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_identity(self):
        assert geometric_mean([7.5]) == pytest.approx(7.5)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_less_than_arithmetic_mean(self):
        data = [1.0, 2.0, 9.0]
        assert geometric_mean(data) < sum(data) / len(data)


class TestSummarize:
    def test_five_number_summary(self):
        s = summarize(range(1, 101))
        assert s.n == 100
        assert s.minimum == 1
        assert s.maximum == 100
        assert s.median == pytest.approx(50.5)
        assert s.mean == pytest.approx(50.5)
        assert s.p25 < s.median < s.p75

    def test_iqr(self):
        s = summarize([0, 0, 0, 10, 10, 10])
        assert s.iqr == pytest.approx(s.p75 - s.p25)

    def test_single_value(self):
        s = summarize([3.0])
        assert s.minimum == s.maximum == s.median == 3.0
        assert s.iqr == 0.0

    def test_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_row_order(self):
        s = summarize([1.0, 2.0, 3.0])
        row = s.as_row()
        assert row == [s.mean, s.minimum, s.p25, s.median, s.p75, s.maximum]

    def test_str_contains_key_fields(self):
        text = str(summarize([0.1, 0.2]))
        assert "mean=" in text and "median=" in text

    def test_frozen(self):
        s = summarize([1.0])
        with pytest.raises(Exception):
            s.mean = 2.0  # type: ignore[misc]

    def test_nan_free_for_finite_input(self):
        s = summarize([0.5] * 10)
        assert all(math.isfinite(v) for v in s.as_row())
