"""Tests for the workload characterization report."""

import pytest

from repro.cpu.sampling import SamplingConfig
from repro.workloads.characterize import (
    characterize,
    format_characterization,
)
from repro.workloads.registry import get_profile

SAMPLING = SamplingConfig(n_samples=1, warmup_instructions=2000,
                          measure_instructions=2000, seed=5)


@pytest.fixture(scope="module")
def ws_character():
    return characterize(get_profile("web_search"), sampling=SAMPLING)


@pytest.fixture(scope="module")
def zm_character():
    return characterize(get_profile("zeusmp"), sampling=SAMPLING)


class TestCharacterize:
    def test_fields_populated(self, ws_character):
        assert ws_character.name == "web_search"
        assert ws_character.kind == "latency-sensitive"
        assert ws_character.uipc > 0

    def test_server_vs_batch_signature(self, ws_character, zm_character):
        # The paper's §III contrast, in one comparison.
        assert zm_character.mlp_ge2 > ws_character.mlp_ge2
        assert ws_character.l1i_mpki > zm_character.l1i_mpki

    def test_rates_bounded(self, ws_character):
        assert 0.0 <= ws_character.branch_misprediction_rate <= 1.0
        assert 0.0 <= ws_character.mlp_ge3 <= ws_character.mlp_ge2 <= 1.0

    def test_format(self, ws_character, zm_character):
        text = format_characterization(
            {c.name: c for c in (ws_character, zm_character)}
        )
        lines = text.splitlines()
        assert "web_search" in text and "zeusmp" in text
        # Services sort before batch workloads.
        ws_line = next(i for i, l in enumerate(lines) if "web_search" in l)
        zm_line = next(i for i, l in enumerate(lines) if "zeusmp" in l)
        assert ws_line < zm_line
