"""Tests for heterogeneous co-runner placement (repro.fleet.placement).

Covers the profile table, exact apportionment, the three placement
policies' determinism and shard invariance, the homogeneous
bit-compatibility anchor, heterogeneous sharded runs, and the placement
verbs on the live service.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.stretch import StretchMode
from repro.engine.executor import EngineConfig, ExecutionEngine
from repro.engine.store import ResultStore
from repro.fleet import (
    CorunnerTable,
    FleetConfig,
    FleetEngine,
    FleetTimeline,
    PLACEMENT_NAMES,
    fit_tail_surrogate,
    make_placement,
    mix_counts,
    run_fleet_sharded,
)
from repro.fleet.placement import (
    DEFAULT_EPOCH_WINDOWS,
    PlacementContext,
    SymbiosisPlacement,
)
from repro.service import FleetService
from repro.workloads.registry import get_profile

from tests.test_fleet import (
    TEST_GRID,
    fleet_config,
    performance_model,
)


def corunner_model(
    batch: str, base_ls: float, base_batch: float
) -> ColocationPerformance:
    """Hand-built co-runner model (distinct factors per profile)."""
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload=batch,
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(base_ls, base_batch),
            StretchMode.B_MODE: ModePerformance(
                base_ls - 0.06, base_batch + 0.08
            ),
            StretchMode.Q_MODE: ModePerformance(
                base_ls + 0.05, base_batch - 0.10
            ),
        },
    )


#: zeusmp matches the homogeneous model exactly (the bit-identity anchor);
#: lbm is the aggressor, milc the friendly co-runner.
def corunner_models() -> tuple[ColocationPerformance, ...]:
    return (
        performance_model(),  # zeusmp, identical to the homogeneous model
        corunner_model("lbm", 0.44, 0.55),
        corunner_model("milc", 0.56, 0.35),
    )


POPULATION = ("zeusmp", "lbm", "milc")


def het_config(**kwargs) -> FleetConfig:
    defaults = dict(population=POPULATION, placement="random")
    defaults.update(kwargs)
    return fleet_config(**defaults)


@pytest.fixture(scope="module")
def het_surrogate():
    engine = FleetEngine(
        get_profile("web_search"),
        performance_model(),
        het_config(),
        corunners=corunner_models(),
    )
    return fit_tail_surrogate(
        get_profile("web_search").qos, engine.perf_factors, TEST_GRID
    )


def make_het_engine(het_surrogate, **cfg_kwargs) -> FleetEngine:
    return FleetEngine(
        get_profile("web_search"),
        performance_model(),
        het_config(**cfg_kwargs),
        surrogate=het_surrogate,
        corunners=corunner_models(),
    )


def make_context(n_servers=32, n_windows=12, seed=7, mix=None) -> PlacementContext:
    table = CorunnerTable.from_performances(corunner_models())
    return PlacementContext(
        n_servers=n_servers,
        n_windows=n_windows,
        seed=seed,
        mix=np.asarray(mix if mix is not None else [1.0] * table.n_profiles),
        table=table,
    )


class TestMixCounts:
    def test_exact_apportionment(self):
        counts = mix_counts(10, np.array([1.0, 1.0, 1.0]))
        assert counts.sum() == 10
        assert counts.tolist() == [4, 3, 3]  # stable ties: earlier wins

    def test_proportional(self):
        counts = mix_counts(100, np.array([3.0, 1.0]))
        assert counts.tolist() == [75, 25]

    def test_every_size_sums(self):
        mix = np.array([0.5, 0.3, 0.2])
        for n in range(1, 40):
            assert mix_counts(n, mix).sum() == n


class TestCorunnerTable:
    def test_from_performances(self):
        table = CorunnerTable.from_performances(corunner_models())
        assert table.profiles == POPULATION
        assert table.perf_rows.shape == (3, 4)
        assert table.batch_rows.shape == (3, 4)
        # Throttled column: LS runs unimpeded, batch contributes nothing.
        assert np.all(table.perf_rows[:, 3] == 1.0)
        assert np.all(table.batch_rows[:, 3] == 0.0)

    def test_rejects_empty_and_mixed_ls(self):
        with pytest.raises(ValueError, match="at least one profile"):
            CorunnerTable.from_performances(())
        other = ColocationPerformance(
            ls_workload="media_streaming",
            batch_workload="lbm",
            ls_solo_uipc=0.5,
            per_mode={
                mode: ModePerformance(0.4, 0.4)
                for mode in (
                    StretchMode.BASELINE, StretchMode.B_MODE,
                    StretchMode.Q_MODE,
                )
            },
        )
        with pytest.raises(ValueError, match="disagree on the LS workload"):
            CorunnerTable.from_performances((performance_model(), other))

    def test_friendliness_is_baseline_factor(self):
        table = CorunnerTable.from_performances(corunner_models())
        # milc (0.56 baseline LS UIPC) is friendlier than lbm (0.44).
        friendliness = table.friendliness()
        assert friendliness[2] > friendliness[0] > friendliness[1]

    def test_perf_factors_cover_all_profiles(self):
        table = CorunnerTable.from_performances(corunner_models())
        factors = table.perf_factors
        assert set(np.round(table.perf_rows.ravel(), 12)) <= {
            round(f, 12) for f in factors
        }


class TestFleetConfigValidation:
    def test_population_mix_length_mismatch(self):
        with pytest.raises(ValueError, match="population_mix"):
            het_config(population_mix=(1.0,))

    def test_duplicate_population(self):
        with pytest.raises(ValueError, match="unique"):
            fleet_config(population=("lbm", "lbm"))

    def test_unknown_placement(self):
        with pytest.raises(KeyError, match="unknown placement policy"):
            het_config(placement="alphabetical")

    def test_placement_epoch_positive(self):
        with pytest.raises(ValueError, match="placement_epoch"):
            het_config(placement_epoch=0)

    def test_mix_fractions_default_uniform(self):
        cfg = het_config()
        assert cfg.mix_fractions == pytest.approx((1 / 3, 1 / 3, 1 / 3))
        weighted = het_config(population_mix=(2.0, 1.0, 1.0))
        assert weighted.mix_fractions == pytest.approx((0.5, 0.25, 0.25))

    def test_engine_rejects_mismatched_corunners(self):
        with pytest.raises(ValueError, match="co-runner models"):
            FleetEngine(
                get_profile("web_search"), performance_model(), het_config(),
                corunners=corunner_models()[:2],
            )
        with pytest.raises(ValueError, match="population"):
            FleetEngine(
                get_profile("web_search"), performance_model(),
                fleet_config(),
                corunners=corunner_models(),
            )


class TestPlacementPolicies:
    def test_all_policies_deterministic(self):
        for name in PLACEMENT_NAMES:
            policy = make_placement(name)
            a = policy.assign(0, make_context())
            b = policy.assign(0, make_context())
            assert np.array_equal(a, b), name

    def test_assignments_respect_exact_mix(self):
        ctx = make_context(n_servers=32, mix=[2.0, 1.0, 1.0])
        for name in PLACEMENT_NAMES:
            assign = make_placement(name).assign(0, ctx)
            counts = np.bincount(assign, minlength=3)
            assert counts.tolist() == [16, 8, 8], name

    def test_slice_invariance(self):
        # A shard's [lo, hi) slice equals the full-fleet assignment slice
        # whatever the shard layout — same discipline as the balancing
        # policies.
        for name in PLACEMENT_NAMES:
            full = make_placement(name).assign(5, make_context(n_servers=48))
            for lo, hi in ((0, 16), (16, 31), (31, 48)):
                part = make_placement(name).assign(
                    5, make_context(n_servers=48)
                )[lo:hi]
                assert np.array_equal(part, full[lo:hi]), (name, lo, hi)

    def test_epoch_boundaries(self):
        policy = make_placement("random", epoch_windows=3)
        within = [
            policy.assign(w, make_context()) for w in (0, 1, 2)
        ]
        assert np.array_equal(within[0], within[1])
        assert np.array_equal(within[0], within[2])
        nxt = policy.assign(3, make_context())
        assert not np.array_equal(within[0], nxt)

    def test_locality_is_static_contiguous_blocks(self):
        policy = make_placement("locality")
        first = policy.assign(0, make_context())
        later = policy.assign(7 * DEFAULT_EPOCH_WINDOWS, make_context())
        assert np.array_equal(first, later)
        # Contiguous blocks: the assignment changes value at most P-1 times.
        assert int((np.diff(first) != 0).sum()) <= 2

    def test_symbiosis_matches_friendly_to_loaded(self):
        ctx = make_context(n_servers=30)
        rel = np.linspace(2.0, 0.5, 30)  # server 0 most loaded
        ctx.relative_loads = lambda window: rel
        assign = SymbiosisPlacement().assign(0, ctx)
        friendliness = ctx.table.friendliness()[assign]
        # Friendliness must be non-increasing down the load ranking.
        assert np.all(np.diff(friendliness[np.argsort(-rel)]) <= 1e-12)

    def test_symbiosis_beats_random_on_load_alignment(self):
        ctx = make_context(n_servers=60)
        rng = np.random.default_rng(0)
        rel = rng.uniform(0.5, 1.5, 60)
        ctx.relative_loads = lambda window: rel
        sym = SymbiosisPlacement().assign(0, ctx)
        rnd = make_placement("random").assign(0, ctx)
        friendliness = ctx.table.friendliness()
        # Symbiosis correlates friendliness with load strictly better.
        corr = lambda a: float(np.corrcoef(rel, friendliness[a])[0, 1])
        assert corr(sym) > corr(rnd)
        assert corr(sym) > 0.9


class TestHeterogeneousEngine:
    def test_single_profile_population_bit_identical(self, het_surrogate):
        """A 1-profile population matching the homogeneous model is the
        placement layer run with zero degrees of freedom — timelines must
        be bit-identical to placement-off."""
        base = FleetEngine(
            get_profile("web_search"), performance_model(), fleet_config(),
            surrogate=het_surrogate,
        ).run_day("web_search")
        for placement in PLACEMENT_NAMES:
            cfg = fleet_config(
                population=("zeusmp",), placement=placement
            )
            day = FleetEngine(
                get_profile("web_search"), performance_model(), cfg,
                surrogate=het_surrogate,
                corunners=(performance_model(),),
            ).run_day("web_search")
            assert day.to_values() == base.to_values(), placement

    def test_heterogeneous_changes_results(self, het_surrogate):
        homog = FleetEngine(
            get_profile("web_search"), performance_model(), fleet_config(),
            surrogate=het_surrogate,
        ).run_day("web_search")
        het = make_het_engine(het_surrogate).run_day("web_search")
        assert not np.array_equal(homog.batch_uipc_sum, het.batch_uipc_sum)

    def test_sharding_invariance(self, het_surrogate):
        engine = make_het_engine(het_surrogate, n_servers=12)
        full = engine.run_day("web_search")
        parts = [
            engine.run_day("web_search", server_range=(lo, hi))
            for lo, hi in ((0, 5), (5, 6), (6, 12))
        ]
        merged = FleetTimeline.merge(parts)
        assert np.array_equal(merged.violations, full.violations)
        assert np.array_equal(merged.mode_counts, full.mode_counts)
        assert np.allclose(
            merged.batch_uipc_sum, full.batch_uipc_sum, rtol=1e-12
        )

    def test_baseline_batch_uipc_is_mix_weighted(self):
        engine = FleetEngine(
            get_profile("web_search"), performance_model(),
            het_config(n_servers=9),
            corunners=corunner_models(),
        )
        counts = mix_counts(9, np.asarray(het_config().mix_fractions))
        expected = float(
            counts @ engine.corunner_table.batch_rows[:, 0]
        ) / 9
        assert engine.baseline_batch_uipc == pytest.approx(expected)

    def test_step_record_reports_occupancy(self, het_surrogate):
        stepper = make_het_engine(het_surrogate).stepper("web_search")
        record = stepper.step()
        assert record["placement"] == stepper.last_placement
        assert sum(record["placement"].values()) == 8
        assert set(record["placement"]) == set(POPULATION)

    def test_run_fleet_sharded_heterogeneous(self, het_surrogate, tmp_path):
        config = het_config(n_servers=12)
        full = FleetEngine(
            get_profile("web_search"), performance_model(), config,
            surrogate=het_surrogate, corunners=corunner_models(),
        ).run_day("web_search")
        sharded = run_fleet_sharded(
            get_profile("web_search"), performance_model(), config,
            "web_search",
            engine=ExecutionEngine(EngineConfig(workers=2)),
            store=ResultStore(tmp_path), n_shards=3,
            surrogate=het_surrogate, corunners=corunner_models(),
        )
        assert np.array_equal(sharded.violations, full.violations)
        assert np.array_equal(sharded.mode_counts, full.mode_counts)
        assert np.allclose(
            sharded.batch_uipc_sum, full.batch_uipc_sum, rtol=1e-12
        )


class TestServicePlacement:
    def make_service(self, het_surrogate, **kwargs) -> FleetService:
        return FleetService(
            make_het_engine(het_surrogate), "web_search", **kwargs
        )

    def test_status_reports_placement(self, het_surrogate):
        service = self.make_service(het_surrogate)
        service.advance(2)
        status = service.status()
        assert status["placement"] == "random"
        assert status["population"] == pytest.approx(
            {name: 1 / 3 for name in POPULATION}
        )

    def test_whatif_placement(self, het_surrogate):
        service = self.make_service(het_surrogate)
        service.advance(2)
        result = service.whatif(placement="symbiosis", horizon=4)
        assert result["placement"] == "symbiosis"
        assert "violation_rate" in result["diff"]

    def test_reconfigure_placement(self, het_surrogate):
        service = self.make_service(het_surrogate)
        service.advance(2)
        result = service.reconfigure(placement="locality")
        assert result["placement"] == "locality"
        assert service.engine.config.placement == "locality"
        service.advance(2)
        assert service.status()["placement"] == "locality"


class TestHomogeneousStatusUnchanged:
    def test_status_has_no_placement_keys(self, het_surrogate):
        engine = FleetEngine(
            get_profile("web_search"), performance_model(), fleet_config(),
            surrogate=het_surrogate,
        )
        service = FleetService(engine, "web_search")
        service.advance(1)
        status = service.status()
        assert "placement" not in status
        assert "population" not in status
        with pytest.raises(ValueError, match="heterogeneous population"):
            service.whatif(placement="symbiosis")
        with pytest.raises(ValueError, match="heterogeneous population"):
            service.reconfigure(placement="symbiosis")
