"""Tests for the pipeline waterfall tracer."""

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.isa import OpClass
from repro.cpu.pipeview import PipeEvent, record_pipeline, render_waterfall
from repro.cpu.smt_core import SMTCore
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile


def make_core(two_threads=False) -> SMTCore:
    ws = generate_trace(get_profile("web_search"), 6000, seed=2)
    if two_threads:
        zm = generate_trace(get_profile("zeusmp"), 6000, seed=2)
        return SMTCore(CoreConfig(), (ws, zm))
    return SMTCore(CoreConfig().single_thread(192), (ws,))


class TestRecord:
    def test_records_every_dispatch(self):
        core = make_core()
        events = record_pipeline(core, 500)
        assert len(events) >= 500
        assert all(isinstance(e, PipeEvent) for e in events)

    def test_timing_invariants(self):
        events = record_pipeline(make_core(), 500)
        for e in events:
            assert e.ready >= e.dispatch
            assert e.completion > e.dispatch or e.op is OpClass.LOAD
            assert e.latency >= 0

    def test_two_threads_interleave(self):
        events = record_pipeline(make_core(two_threads=True), 400)
        assert {e.thread for e in events} == {0, 1}

    def test_loads_have_memory_latencies(self):
        events = record_pipeline(make_core(), 2000)
        load_latencies = [e.latency for e in events if e.op is OpClass.LOAD]
        assert max(load_latencies) > 20  # at least one miss in the window

    def test_log_detached_after_recording(self):
        core = make_core()
        record_pipeline(core, 200)
        assert core.event_log is None

    def test_sequences_monotone_per_thread(self):
        events = record_pipeline(make_core(), 500)
        seqs = [e.seq for e in events if e.thread == 0]
        assert seqs == sorted(seqs)


class TestRender:
    def test_waterfall_contains_markers(self):
        events = record_pipeline(make_core(), 300)
        text = render_waterfall(events, max_rows=20)
        assert "D" in text and "C" in text
        assert text.count("|") >= 40  # two per row

    def test_row_cap(self):
        events = record_pipeline(make_core(), 300)
        text = render_waterfall(events, max_rows=10)
        assert len(text.splitlines()) == 11  # header + 10 rows

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_waterfall([])

    def test_collapsed_scale_keeps_dispatch_visible(self):
        # A short op inside a long window collapses its D and C onto one
        # column; the combined glyph must appear instead of C silently
        # overwriting D.
        events = [
            PipeEvent(thread=0, seq=0, op=OpClass.LOAD, pc=0,
                      dispatch=0, ready=0, completion=10_000),
            PipeEvent(thread=0, seq=1, op=OpClass.INT_ALU, pc=4,
                      dispatch=5_000, ready=5_000, completion=5_001),
        ]
        text = render_waterfall(events, width=40)
        short_row = text.splitlines()[2]
        assert "*" in short_row
        assert "C" not in short_row and "D" not in short_row

    def test_distinct_columns_keep_both_markers(self):
        events = [
            PipeEvent(thread=0, seq=0, op=OpClass.LOAD, pc=0,
                      dispatch=0, ready=2, completion=30),
        ]
        row = render_waterfall(events, width=40).splitlines()[1]
        assert "D" in row and "C" in row and "*" not in row
