"""Tests for the set-associative cache model."""

import pytest

from repro.cpu.caches import SetAssociativeCache
from repro.cpu.config import CacheConfig


def small_cache(ways=2, sets=4) -> SetAssociativeCache:
    return SetAssociativeCache(64 * ways * sets, 64, ways, name="test")


class TestGeometry:
    def test_from_config(self):
        cache = SetAssociativeCache.from_config(CacheConfig())
        assert cache.num_sets == 128
        assert cache.ways == 8

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, 64, 2)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ValueError, match="power of two"):
            SetAssociativeCache(64 * 2 * 3, 64, 2)


class TestAccess:
    def test_first_access_misses(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.misses == 1

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0) is True
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(1)
        cache.access(2)  # evicts 0 (LRU)
        assert cache.access(1) is True
        assert cache.access(0) is False

    def test_lru_refresh_on_hit(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(1)
        cache.access(0)  # 0 becomes MRU
        cache.access(2)  # evicts 1
        assert cache.access(0) is True
        assert cache.access(1) is False

    def test_set_indexing_isolates(self):
        cache = small_cache(ways=1, sets=4)
        cache.access(0)
        cache.access(1)  # different set
        assert cache.access(0) is True

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate() == pytest.approx(0.5)

    def test_miss_rate_no_accesses(self):
        assert small_cache().miss_rate() == 0.0


class TestProbeAndFill:
    def test_probe_does_not_install(self):
        cache = small_cache()
        assert cache.probe(5) is False
        assert cache.access(5) is False  # still a miss

    def test_probe_does_not_count(self):
        cache = small_cache()
        cache.probe(5)
        assert cache.accesses == 0

    def test_probe_does_not_touch_lru(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0)
        cache.access(1)
        cache.probe(0)   # must NOT refresh 0
        cache.access(2)  # evicts 0, the true LRU
        assert cache.probe(0) is False

    def test_fill_installs_silently(self):
        cache = small_cache()
        cache.fill(9)
        assert cache.accesses == 0
        assert cache.access(9) is True

    def test_fill_respects_capacity(self):
        cache = small_cache(ways=2, sets=1)
        for block in range(5):
            cache.fill(block)
        assert cache.occupancy() <= 2


class TestStats:
    def test_reset_keeps_contents(self):
        cache = small_cache()
        cache.access(3)
        cache.reset_stats()
        assert cache.misses == 0
        assert cache.access(3) is True

    def test_occupancy(self):
        cache = small_cache(ways=2, sets=2)
        cache.access(0)
        cache.access(1)
        assert cache.occupancy() == 2
