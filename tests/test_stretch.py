"""Tests for the Stretch control register and core wrapper."""

import pytest

from repro.core.partitioning import DEFAULT_B_MODE, DEFAULT_Q_MODE, PartitionScheme
from repro.core.stretch import ControlRegister, StretchCore, StretchMode
from repro.cpu.config import CoreConfig
from repro.cpu.smt_core import SMTCore
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile


def make_core() -> SMTCore:
    ws = generate_trace(get_profile("web_search"), 6000, seed=1)
    zm = generate_trace(get_profile("zeusmp"), 6000, seed=1)
    return SMTCore(CoreConfig(), (ws, zm))


class TestControlRegister:
    def test_reset_is_baseline(self):
        assert ControlRegister().mode is StretchMode.BASELINE

    def test_s_bit_engages_b_mode(self):
        assert ControlRegister(s_bit=True, bq_bit=False).mode is StretchMode.B_MODE

    def test_bq_bit_selects_q_mode(self):
        assert ControlRegister(s_bit=True, bq_bit=True).mode is StretchMode.Q_MODE

    def test_bq_ignored_without_s(self):
        assert ControlRegister(s_bit=False, bq_bit=True).mode is StretchMode.BASELINE

    def test_request_round_trip(self):
        reg = ControlRegister()
        for mode in StretchMode:
            reg.request(mode)
            assert reg.mode is mode


class TestStretchCore:
    def test_initial_mode_is_baseline(self):
        stretch = StretchCore(make_core())
        assert stretch.mode is StretchMode.BASELINE
        assert stretch.core.rob.limits == (96, 96)

    def test_b_mode_reprograms_limits(self):
        stretch = StretchCore(make_core())
        assert stretch.set_mode(StretchMode.B_MODE)
        assert stretch.core.rob.limits == (56, 136)

    def test_q_mode_reprograms_limits(self):
        stretch = StretchCore(make_core())
        stretch.set_mode(StretchMode.Q_MODE)
        assert stretch.core.rob.limits == (136, 56)

    def test_lsq_follows_rob(self):
        stretch = StretchCore(make_core())
        stretch.set_mode(StretchMode.B_MODE)
        expected = DEFAULT_B_MODE.apply(CoreConfig()).lsq_limits
        assert stretch.core.lsq.limits == expected

    def test_re_request_is_free(self):
        stretch = StretchCore(make_core())
        stretch.set_mode(StretchMode.B_MODE)
        switches = stretch.mode_switches
        assert not stretch.set_mode(StretchMode.B_MODE)
        assert stretch.mode_switches == switches

    def test_mode_switch_counting(self):
        stretch = StretchCore(make_core())
        stretch.set_mode(StretchMode.B_MODE)
        stretch.set_mode(StretchMode.BASELINE)
        stretch.set_mode(StretchMode.Q_MODE)
        assert stretch.mode_switches == 3

    def test_optional_q_mode_falls_back_to_baseline(self):
        stretch = StretchCore(make_core(), q_mode=None)
        stretch.set_mode(StretchMode.Q_MODE)
        assert stretch.core.rob.limits == (96, 96)

    def test_custom_b_mode(self):
        stretch = StretchCore(make_core(), b_mode=PartitionScheme(32, 160))
        stretch.set_mode(StretchMode.B_MODE)
        assert stretch.core.rob.limits == (32, 160)

    def test_requires_two_threads(self):
        trace = generate_trace(get_profile("zeusmp"), 2000, seed=1)
        solo = SMTCore(CoreConfig().single_thread(192), (trace,))
        with pytest.raises(ValueError):
            StretchCore(solo)

    def test_execution_across_mode_changes(self):
        stretch = StretchCore(make_core())
        stretch.core.run(300, require_all_threads=True)
        stretch.set_mode(StretchMode.B_MODE)
        result = stretch.core.run(300, require_all_threads=True)
        assert all(t.instructions >= 300 for t in result.threads)
        assert result.threads[1].rob_limit == 136

    def test_scheme_for_q_without_provision(self):
        stretch = StretchCore(make_core(), q_mode=None)
        assert stretch.scheme_for(StretchMode.Q_MODE).is_baseline
