"""Tests for the span tracer (repro.obs.tracer) and its two producers."""

import json

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.pipeview import record_pipeline
from repro.cpu.smt_core import SMTCore
from repro.engine.executor import EngineConfig, ExecutionEngine
from repro.engine.store import ResultStore
from repro.obs.tracer import SpanTracer, pipeline_trace
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile

#: The engine job-lifecycle phases the ISSUE requires spans for.
ENGINE_PHASES = {
    "engine.dedupe",
    "engine.cache_lookup",
    "engine.queue",
    "engine.execute",
    "engine.store_write",
}


class FakeJob:
    def __init__(self, n: int):
        self.n = n
        self.key = f"{n:02d}" + "0" * 62

    def run(self):
        return (float(self.n),)


class TestSpanTracer:
    def test_valid_chrome_trace_json(self, tmp_path):
        tracer = SpanTracer(process_name="test")
        start = tracer.now_us()
        tracer.complete("phase", start, 12.5, args={"k": 1})
        tracer.instant("marker")
        path = tmp_path / "out.trace.json"
        count = tracer.write(path)
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert len(trace["traceEvents"]) == count == 3
        span = next(e for e in trace["traceEvents"] if e.get("ph") == "X")
        assert span["dur"] == 12.5 and span["args"] == {"k": 1}
        instant = next(e for e in trace["traceEvents"] if e.get("ph") == "i")
        assert instant["s"] == "t"

    def test_span_context_manager(self):
        tracer = SpanTracer()
        with tracer.span("work", tid=3):
            pass
        assert tracer.span_names() == {"work"}
        event = [e for e in tracer.events if e.get("ph") == "X"][0]
        assert event["tid"] == 3
        assert event["dur"] > 0

    def test_zero_duration_clamped(self):
        tracer = SpanTracer()
        tracer.complete("p", 5.0, 0.0)
        assert tracer.events[-1]["dur"] == 0.001

    def test_clock_is_monotonic(self):
        tracer = SpanTracer()
        assert tracer.now_us() <= tracer.now_us()


class TestEngineLifecycleSpans:
    def run_traced(self, workers: int):
        tracer = SpanTracer()
        engine = ExecutionEngine(EngineConfig(workers=workers, backoff=0.0))
        store = ResultStore(None)
        report = engine.run_jobs(
            [FakeJob(i) for i in range(4)], store=store, tracer=tracer
        )
        return tracer, store, report

    def test_serial_run_covers_every_phase(self):
        tracer, __, report = self.run_traced(workers=1)
        assert report.stats.executed == 4
        assert ENGINE_PHASES <= tracer.span_names()
        for phase in ENGINE_PHASES:
            count = sum(
                1 for e in tracer.events
                if e.get("ph") == "X" and e["name"] == phase
            )
            assert count >= 1, phase

    def test_pool_run_covers_every_phase(self):
        tracer, __, report = self.run_traced(workers=2)
        assert report.stats.executed == 4
        assert ENGINE_PHASES <= tracer.span_names()
        lanes = {
            e["tid"] for e in tracer.events
            if e.get("ph") == "X" and e["name"] == "engine.execute"
        }
        assert lanes <= {1, 2} and lanes

    def test_cache_hits_emit_instants_not_executes(self):
        tracer = SpanTracer()
        engine = ExecutionEngine(EngineConfig(workers=1))
        store = ResultStore(None)
        jobs = [FakeJob(i) for i in range(3)]
        engine.run_jobs(jobs, store=store)
        warm = engine.run_jobs(jobs, store=store, tracer=tracer)
        assert warm.stats.executed == 0
        assert "engine.execute" not in tracer.span_names()
        hits = [e for e in tracer.events if e["name"] == "engine.cache_hit"]
        assert len(hits) == 3

    def test_job_telemetry_recorded(self):
        __, store, __ = self.run_traced(workers=1)
        assert len(store.job_telemetry) == 4
        record = next(iter(store.job_telemetry.values()))
        assert record["mode"] == "serial"
        assert record["tries"] == 1
        assert record["seconds"] >= 0

    def test_untraced_run_emits_nothing(self):
        engine = ExecutionEngine(EngineConfig(workers=1))
        store = ResultStore(None)
        report = engine.run_jobs([FakeJob(0)], store=store)
        assert report.stats.executed == 1  # no tracer, no crash


class TestPipelineBridge:
    def test_pipe_events_become_spans(self):
        ws = generate_trace(get_profile("web_search"), 5000, seed=2)
        zm = generate_trace(get_profile("zeusmp"), 5000, seed=2)
        core = SMTCore(CoreConfig(), (ws, zm))
        events = record_pipeline(core, 400)
        tracer = pipeline_trace(events)
        spans = [e for e in tracer.events if e.get("ph") == "X"]
        assert len(spans) == len(events)
        assert {e["tid"] for e in spans} == {0, 1}
        lane_names = {
            e["args"]["name"] for e in tracer.events
            if e["name"] == "thread_name"
        }
        assert lane_names == {"hw thread 0", "hw thread 1"}
        for span, event in zip(spans, events):
            assert span["ts"] == event.dispatch
            assert span["args"]["seq"] == event.seq
            assert span["cat"] == "pipeline"

    def test_accepts_raw_event_log_tuples(self):
        ws = generate_trace(get_profile("web_search"), 5000, seed=2)
        core = SMTCore(CoreConfig().single_thread(192), (ws,))
        core.event_log = []
        try:
            core.run(300)
            raw = list(core.event_log)
        finally:
            core.event_log = None
        tracer = pipeline_trace(raw, us_per_cycle=2.0)
        spans = [e for e in tracer.events if e.get("ph") == "X"]
        assert len(spans) == len(raw)
        assert spans[0]["ts"] == raw[0][4] * 2.0

    def test_feeds_existing_tracer(self):
        tracer = SpanTracer(process_name="mine")
        out = pipeline_trace([], tracer=tracer)
        assert out is tracer
