"""Tests for interval sampling (repro.obs.sampler) against a real core.

The load-bearing guarantees: an attached sampler never perturbs the
simulation (bit-identical cycles/instructions), and the per-window series
it emits reconciles exactly with the aggregate measurement.
"""

import json

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.smt_core import SMTCore
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import (
    DEFAULT_WINDOW_CYCLES,
    IntervalSampler,
    JsonlSink,
    METRICS_ENV,
    ServiceSampler,
    WINDOW_ENV,
    attach_core_observers,
)
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile

INSTRUCTIONS = 5000


def make_core(two_threads=True) -> SMTCore:
    ws = generate_trace(get_profile("web_search"), 20_000, seed=3)
    if not two_threads:
        return SMTCore(CoreConfig().single_thread(192), (ws,))
    zm = generate_trace(get_profile("zeusmp"), 20_000, seed=3)
    return SMTCore(CoreConfig(), (ws, zm))


def run_sampled(window_cycles=500):
    core = make_core()
    core.sampler = IntervalSampler(window_cycles=window_cycles)
    results = core.run(INSTRUCTIONS)
    return core, results


class TestNonPerturbation:
    def test_sampled_run_bit_identical(self):
        baseline = make_core().run(INSTRUCTIONS)
        __, sampled = run_sampled()
        assert sampled.cycles == baseline.cycles
        for base, obs in zip(baseline.threads, sampled.threads):
            assert obs.cycles == base.cycles
            assert obs.instructions == base.instructions
            assert obs.uipc == base.uipc

    def test_detached_core_has_no_sampler(self):
        core = make_core()
        assert core.sampler is None and core.profiler is None


class TestWindowReconciliation:
    def test_window_instructions_sum_to_aggregate(self):
        core, result = run_sampled()
        samples = core.sampler.samples
        for t, thread in enumerate(result.threads):
            windowed = sum(s.threads[t].instructions for s in samples)
            assert windowed == thread.instructions

    def test_window_cycles_sum_to_aggregate(self):
        core, result = run_sampled()
        samples = core.sampler.samples
        total = sum(s.cycles for s in samples)
        assert total == result.cycles

    def test_windowed_uipc_weighted_mean_matches_aggregate(self):
        core, result = run_sampled()
        samples = core.sampler.samples
        for t, thread in enumerate(result.threads):
            weighted = sum(s.threads[t].uipc * s.cycles for s in samples)
            assert weighted / thread.cycles == pytest.approx(
                thread.uipc, rel=1e-9
            )

    def test_windows_are_contiguous(self):
        core, __ = run_sampled()
        samples = core.sampler.samples
        assert samples[0].start_cycle == 0
        for prev, cur in zip(samples, samples[1:]):
            assert cur.start_cycle == prev.end_cycle
            assert cur.index == prev.index + 1

    def test_signals_present(self):
        core, __ = run_sampled()
        tw = core.sampler.samples[0].threads[0]
        assert tw.rob_limit > 0 and tw.lsq_limit > 0
        assert 0 <= tw.rob_occupancy <= tw.rob_limit
        assert tw.uipc >= 0 and tw.mlp >= 0
        assert 0 <= tw.branch_miss_rate <= 1
        assert 0 <= tw.l1d_miss_rate <= 1


class TestJsonlSink:
    def test_streams_tagged_windows(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        core = make_core()
        core.sampler = IntervalSampler(
            window_cycles=500, sink=JsonlSink(path), meta={"kind": "pair"}
        )
        core.run(INSTRUCTIONS)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(core.sampler.samples)
        for record in records:
            assert record["type"] == "core_window"
            assert record["kind"] == "pair"
            assert len(record["threads"]) == 2

    def test_flush_batches_into_one_append(self, tmp_path):
        path = tmp_path / "out.jsonl"
        sink = JsonlSink(path)
        sink.write({"a": 1})
        sink.write({"b": 2})
        assert not path.exists()  # buffered until flush
        assert sink.flush() == 2
        assert len(path.read_text().splitlines()) == 2
        assert sink.flush() == 0

    def test_registry_series(self):
        registry = MetricsRegistry()
        core = make_core()
        core.sampler = IntervalSampler(window_cycles=500, registry=registry)
        core.run(INSTRUCTIONS)
        series = registry.series("core.window.uipc.t0")
        assert len(series.values()) == len(core.sampler.samples)


class TestServiceSampler:
    def test_wraps_observation(self):
        registry = MetricsRegistry()
        sampler = ServiceSampler(registry=registry)
        s0 = sampler.observe(4.0, load_fraction=0.5)
        s1 = sampler.observe(6.0, mean_queue_depth=2.0)
        assert (s0.index, s1.index) == (0, 1)
        assert s1.tail_latency_ms == 6.0
        assert registry.counter("service.windows").value == 2
        assert registry.series("service.tail_latency_ms").values() == [4.0, 6.0]
        assert registry.series("service.queue_depth").values() == [2.0]


class TestAttachCoreObservers:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(METRICS_ENV, raising=False)
        monkeypatch.delenv("REPRO_OBS_PROFILE", raising=False)
        core = make_core()
        attach_core_observers(core)
        assert core.sampler is None and core.profiler is None

    def test_env_attaches_sampler(self, tmp_path, monkeypatch):
        path = tmp_path / "m.jsonl"
        monkeypatch.setenv(METRICS_ENV, str(path))
        monkeypatch.setenv(WINDOW_ENV, "750")
        core = make_core()
        attach_core_observers(core, {"kind": "solo"})
        assert isinstance(core.sampler, IntervalSampler)
        assert core.sampler.window_cycles == 750
        assert core.sampler.meta["kind"] == "solo"
        # The core's fetch policy is stamped into the metadata (fig12 runs
        # are otherwise indistinguishable from ICOUNT ones in the stream).
        assert core.sampler.meta["fetch_policy"] == "icount"

    def test_garbage_window_falls_back_to_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(METRICS_ENV, str(tmp_path / "m.jsonl"))
        monkeypatch.setenv(WINDOW_ENV, "soon")
        core = make_core()
        attach_core_observers(core)
        assert core.sampler.window_cycles == DEFAULT_WINDOW_CYCLES
