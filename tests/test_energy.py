"""Tests for the first-order energy model."""

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.energy import EnergyBreakdown, EnergyModel, EnergyParameters
from repro.cpu.metrics import SimulationResult, ThreadResult
from repro.cpu.sampling import SamplingConfig, sample_colocation
from repro.workloads.registry import get_profile


def make_result(instructions=1000, cycles=800, **overrides) -> SimulationResult:
    data = dict(thread=0, workload="w", instructions=instructions, cycles=cycles,
                loads=300, stores=100, l1d_misses=20, l1i_misses=5,
                branches=150, branch_mispredicts=10)
    data.update(overrides)
    return SimulationResult(cycles=cycles, threads=(ThreadResult(**data),))


class TestParameters:
    def test_defaults_valid(self):
        EnergyParameters()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EnergyParameters(execute_pj=-1.0)


class TestStaticPower:
    def test_scales_with_rob_size(self):
        small = EnergyModel(CoreConfig(rob_entries=128, rob_limits=(64, 64)))
        big = EnergyModel(CoreConfig(rob_entries=192))
        assert big.static_watts() > small.static_watts()

    def test_mode_invariant(self):
        """Stretch moves entries between threads; total static power is fixed."""
        base = EnergyModel(CoreConfig())
        bmode = EnergyModel(CoreConfig().with_rob_partition(56, 136))
        assert base.static_watts() == pytest.approx(bmode.static_watts())


class TestBreakdown:
    def test_fields(self):
        model = EnergyModel(CoreConfig())
        breakdown = model.breakdown(make_result())
        assert breakdown.dynamic_j > 0
        assert breakdown.static_j > 0
        assert breakdown.total_j == pytest.approx(
            breakdown.dynamic_j + breakdown.static_j
        )
        assert breakdown.watts > 0
        assert breakdown.energy_per_instruction_nj > 0

    def test_more_misses_more_energy(self):
        model = EnergyModel(CoreConfig())
        low = model.breakdown(make_result(l1d_misses=5))
        high = model.breakdown(make_result(l1d_misses=200))
        assert high.dynamic_j > low.dynamic_j

    def test_longer_window_more_static(self):
        model = EnergyModel(CoreConfig())
        short = model.breakdown(make_result(cycles=500))
        long = model.breakdown(make_result(cycles=5000))
        assert long.static_j > short.static_j

    def test_perf_per_watt(self):
        model = EnergyModel(CoreConfig())
        b = model.breakdown(make_result())
        assert b.performance_per_watt() == pytest.approx(b.instructions / b.total_j)

    def test_zero_division_guards(self):
        b = EnergyBreakdown(dynamic_j=0.0, static_j=0.0, cycles=0,
                            instructions=0, frequency_ghz=2.5)
        assert b.watts == 0.0
        assert b.energy_per_instruction_nj == 0.0
        assert b.performance_per_watt() == 0.0


class TestStretchEnergyStory:
    def test_b_mode_improves_perf_per_watt(self):
        """B-mode raises combined throughput on ~the same hardware budget,
        so instructions-per-joule improves for an MLP-bound co-runner."""
        sampling = SamplingConfig(n_samples=2, warmup_instructions=3000,
                                  measure_instructions=3000, seed=8)
        ws, zm = get_profile("web_search"), get_profile("zeusmp")
        base_cfg = CoreConfig()
        bmode_cfg = base_cfg.with_rob_partition(56, 136)
        base = sample_colocation(ws, zm, base_cfg, sampling)
        bmode = sample_colocation(ws, zm, bmode_cfg, sampling)

        def ipj(cfg, results):
            model = EnergyModel(cfg)
            breakdowns = [model.breakdown(r) for r in results]
            return (sum(b.instructions for b in breakdowns)
                    / sum(b.total_j for b in breakdowns))

        assert ipj(bmode_cfg, bmode) > ipj(base_cfg, base) * 0.98
