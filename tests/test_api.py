"""Tests for the stable `repro.api` facade and its deprecation shims."""

import dataclasses

import numpy as np
import pytest

from repro import api
from repro.core.colocation import (
    _measure_colocation_performance,
    measure_colocation_performance,
)
from repro.core.cluster import ClusterSimulator
from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.partitioning import DEFAULT_B_MODE
from repro.core.stretch import StretchMode
from repro.cpu.sampling import SamplingConfig
from repro.experiments.common import Fidelity
from repro.fleet import FleetTimeline
from repro.workloads.registry import get_profile


def performance_model() -> ColocationPerformance:
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(0.52, 0.50),
            StretchMode.B_MODE: ModePerformance(0.46, 0.58),
            StretchMode.Q_MODE: ModePerformance(0.58, 0.40),
        },
    )


class TestResolveSampling:
    def test_defaults_to_library_sampling(self):
        assert api._resolve_sampling(None, None, None, None) == SamplingConfig()

    def test_sampling_with_overrides(self):
        base = SamplingConfig(n_samples=4, seed=1)
        out = api._resolve_sampling(base, None, 9, 2)
        assert out == dataclasses.replace(base, seed=9, n_samples=2)

    def test_fidelity_names(self):
        quick = api._resolve_sampling(None, "quick", None, None)
        assert quick == Fidelity.quick(42).sampling
        seeded = api._resolve_sampling(None, "full", 7, None)
        assert seeded == Fidelity.full(7).sampling
        explicit = api._resolve_sampling(None, Fidelity.quick(3), None, None)
        assert explicit == Fidelity.quick(3).sampling

    def test_conflicts_and_unknowns(self):
        with pytest.raises(ValueError, match="not both"):
            api._resolve_sampling(SamplingConfig(), "quick", None, None)
        with pytest.raises(ValueError, match="fidelity"):
            api._resolve_sampling(None, "medium", None, None)


class TestSimulate(object):
    def test_solo_matches_measure_reference(self, tiny_sampling):
        solo = api.simulate("web_search", sampling=tiny_sampling)
        perf = api.measure("web_search", "zeusmp", sampling=tiny_sampling)
        assert solo == perf.ls_solo_uipc

    def test_pair_modes(self, tiny_sampling):
        perf = api.measure("web_search", "zeusmp", sampling=tiny_sampling)
        baseline = api.simulate(
            ("web_search", "zeusmp"), sampling=tiny_sampling
        )
        assert baseline == (
            perf.per_mode[StretchMode.BASELINE].ls_uipc,
            perf.per_mode[StretchMode.BASELINE].batch_uipc,
        )
        for mode_spec in ("b_mode", StretchMode.B_MODE, DEFAULT_B_MODE):
            pair = api.simulate(
                ("web_search", "zeusmp"), mode=mode_spec,
                sampling=tiny_sampling,
            )
            assert pair == (
                perf.per_mode[StretchMode.B_MODE].ls_uipc,
                perf.per_mode[StretchMode.B_MODE].batch_uipc,
            )

    def test_engines_agree(self, tiny_sampling):
        stored = api.simulate("web_search", sampling=tiny_sampling)
        direct = api.simulate(
            "web_search", sampling=tiny_sampling, engine="direct"
        )
        assert stored == direct

    def test_rejections(self, tiny_sampling):
        with pytest.raises(ValueError, match="pairs only"):
            api.simulate("web_search", mode="b_mode", sampling=tiny_sampling)
        with pytest.raises(ValueError, match="engine"):
            api.simulate("web_search", engine="quantum", sampling=tiny_sampling)
        with pytest.raises(ValueError, match="unknown mode"):
            api.simulate(
                ("web_search", "zeusmp"), mode="turbo", sampling=tiny_sampling
            )


class TestMeasure:
    def test_matches_legacy_implementation(self, tiny_sampling):
        ls, batch = get_profile("web_search"), get_profile("zeusmp")
        legacy = _measure_colocation_performance(ls, batch, sampling=tiny_sampling)
        facade = api.measure("web_search", "zeusmp", sampling=tiny_sampling)
        assert facade == legacy

    def test_q_mode_none_copies_baseline(self, tiny_sampling):
        perf = api.measure(
            "web_search", "zeusmp", q_mode=None, sampling=tiny_sampling
        )
        assert perf.per_mode[StretchMode.Q_MODE] == (
            perf.per_mode[StretchMode.BASELINE]
        )

    def test_unregistered_profile_falls_back_to_direct(self, tiny_sampling):
        custom = dataclasses.replace(
            get_profile("web_search"), description="locally tweaked"
        )
        perf = api.measure(custom, "zeusmp", sampling=tiny_sampling)
        assert perf.ls_workload == "web_search"
        assert perf.ls_solo_uipc > 0.0


class TestDeprecationShims:
    def test_measure_colocation_performance_warns(self, tiny_sampling):
        ls, batch = get_profile("web_search"), get_profile("zeusmp")
        with pytest.deprecated_call(match="repro.api.measure"):
            legacy = measure_colocation_performance(
                ls, batch, sampling=tiny_sampling
            )
        assert legacy == api.measure("web_search", "zeusmp",
                                     sampling=tiny_sampling)

    def test_cluster_run_day_warns_and_delegates(self):
        cluster = ClusterSimulator(
            get_profile("web_search"), performance_model(),
            n_servers=2, seed=5,
        )
        with pytest.deprecated_call(match="run_fleet"):
            day = cluster.run_day(
                lambda h: 0.4, window_minutes=480, requests_per_window=200
            )
        assert len(day.servers) == 2

    def test_old_entry_points_still_importable(self):
        import repro

        assert repro.measure_colocation_performance is (
            measure_colocation_performance
        )
        from repro.core.cluster import ClusterSimulator as FromModule

        assert FromModule is ClusterSimulator


class TestRunDay:
    def test_fixed_monitor_day(self):
        timeline = api.run_day(
            "web_search", performance=performance_model(),
            load="flat:0.3", window_minutes=240, requests_per_window=300,
            seed=11,
        )
        assert len(timeline.windows) == 6
        assert all(w.load_fraction == pytest.approx(0.3) for w in timeline.windows)

    def test_adaptive_day(self):
        from repro.core.adaptive import AdaptiveStretchPolicy
        from repro.core.partitioning import B_MODES

        perf = performance_model()
        qos = get_profile("web_search").qos
        policy = AdaptiveStretchPolicy(qos, perf, tuple(B_MODES))
        timeline = api.run_day(
            "web_search", performance=perf, load="flat:0.2",
            adaptive=policy, window_minutes=240, requests_per_window=300,
            seed=11,
        )
        assert len(timeline.windows) == 6
        assert any(w.scheme != "96-96" for w in timeline.windows)

    def test_callable_load_and_missing_model(self):
        timeline = api.run_day(
            "web_search", performance=performance_model(),
            load=lambda hour: 0.25, window_minutes=480,
            requests_per_window=200,
        )
        assert len(timeline.windows) == 3
        with pytest.raises(ValueError, match="performance model"):
            api.run_day("web_search")


class TestRunFleet:
    def test_exact_and_legacy_engines_agree(self):
        common = dict(
            performance=performance_model(), load="web_search",
            n_servers=2, window_minutes=480, requests_per_window=200,
            seed=5,
        )
        exact = api.run_fleet("web_search", engine="exact", **common)
        legacy = api.run_fleet("web_search", engine="legacy", **common)
        assert isinstance(exact, FleetTimeline)
        assert isinstance(legacy, FleetTimeline)
        assert np.array_equal(exact.violations, legacy.violations)
        assert np.array_equal(exact.mode_counts, legacy.mode_counts)
        assert np.allclose(exact.tail_ms_sum, legacy.tail_ms_sum, rtol=1e-9)

    def test_unknown_engine_and_missing_model(self):
        with pytest.raises(ValueError, match="engine must be"):
            api.run_fleet(
                "web_search", performance=performance_model(),
                engine="warp",
            )
        with pytest.raises(ValueError, match="performance model"):
            api.run_fleet("web_search")

    def test_facade_exported_from_package_root(self):
        import repro

        assert repro.simulate is api.simulate
        assert repro.measure is api.measure
        assert repro.run_day is api.run_day
        assert repro.run_fleet is api.run_fleet
        for name in ("simulate", "measure", "run_day", "run_fleet"):
            assert name in repro.__all__
