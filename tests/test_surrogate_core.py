"""Tests for the UIPC surrogate tier (``repro.cpu.surrogate``).

Covers the fit itself (CRN reproducibility through the store, anchor
predictions bit-identical to the exact sampler, honest error bounds on
fresh seeds), the batched window evaluation, the configuration-family
mapping, and the tier plumbing (``Fidelity`` dispatch, ``grid_jobs``
collapse, and the regression that the surrogate can never leak into
exact-tier golden paths).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.sampling import (
    SamplingConfig,
    evaluate_sample_windows,
    sample_uniforms,
)
from repro.cpu.surrogate import (
    UipcFitJob,
    UipcGrid,
    UipcSurrogate,
    UnsupportedConfigError,
    axis_scale,
    calibration_jobs,
    family_axis,
    family_config_at,
    fit_uipc_surrogate,
)
from repro.engine.job import SimJob
from repro.experiments.common import (
    Fidelity,
    config_all_shared,
    config_dynamic_rob,
    config_solo,
    grid_jobs,
    pair_uipc_many,
    solo_uipc_many,
)
from repro.util.rng import derive_seed

TINY = SamplingConfig(n_samples=2, warmup_instructions=500,
                      measure_instructions=600, seed=11)


def tiny_surrogate_fidelity() -> Fidelity:
    return Fidelity("surrogate", TINY, grid=UipcGrid())


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    from repro.engine.store import reset_default_stores

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    reset_default_stores()
    yield
    reset_default_stores()


class TestFamilies:
    def test_solo_roundtrip(self):
        for size in (16, 48, 96, 192):
            canon, x = family_axis("solo", config_solo(size))
            assert x == size
            assert family_config_at("solo", canon, size) == config_solo(size)
        assert axis_scale("solo", canon) == 192

    def test_pair_roundtrip(self):
        base = config_all_shared()
        member = base.with_rob_partition(56, 136)
        canon, x = family_axis("pair", member)
        assert x == 56 and canon == base
        assert family_config_at("pair", canon, 56) == member
        assert axis_scale("pair", canon) == 192

    def test_dynamic_rob_unsupported(self):
        with pytest.raises(UnsupportedConfigError):
            family_axis("pair", config_dynamic_rob())

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            family_axis("triple", config_solo())

    def test_grid_anchor_values_scale(self):
        grid = UipcGrid()
        a192 = grid.anchor_values("solo", 192)
        assert a192 == (16, 32, 48, 64, 96, 128, 192)
        a384 = grid.anchor_values("solo", 384)
        assert a384[-1] == 384 and len(a384) == len(a192)
        assert grid.anchor_values("pair", 192) == (32, 56, 96, 136, 160)

    def test_validation_excludes_anchors(self):
        grid = UipcGrid()
        for kind in ("solo", "pair"):
            anchors = set(grid.anchor_values(kind, 192))
            vals = grid.validation_values(kind, 192)
            assert vals and not (set(vals) & anchors)


class TestWindowEvaluation:
    def test_inverse_cdf_midpoints(self):
        # 3 sorted replicates at one anchor: u=0.5 lands exactly on the
        # middle replicate (plotting position 3*0.5 - 0.5 = 1.0).
        anchors = np.array([0.0, 1.0])
        quantiles = np.array([[1.0, 2.0, 3.0], [5.0, 6.0, 7.0]])
        out = evaluate_sample_windows(
            anchors, quantiles, np.array([0.0, 1.0]), np.array([0.5])
        )
        assert out.shape == (2, 1)
        assert out[0, 0] == 2.0 and out[1, 0] == 6.0

    def test_anchor_blend_is_linear(self):
        anchors = np.array([0.0, 2.0])
        quantiles = np.array([[0.0, 0.0], [4.0, 4.0]])
        out = evaluate_sample_windows(
            anchors, quantiles, np.array([1.0]), np.array([0.25, 0.75])
        )
        assert np.allclose(out, 2.0)

    def test_uniforms_deterministic_and_distinct(self):
        a = sample_uniforms(TINY, "web_search")
        b = sample_uniforms(TINY, "web_search")
        c = sample_uniforms(TINY, "zeusmp")
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert a.shape == (TINY.n_samples,)
        assert np.all((0 <= a) & (a < 1))


class TestFitThroughStore:
    def test_anchor_prediction_bit_identical_to_exact(self):
        from repro.engine.store import default_store

        surrogate = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        exact = default_store().compute(
            SimJob.solo("gamess", config_solo(96), TINY)
        )
        assert surrogate.predict(96) == exact[0]

    def test_fit_reproducible_through_store(self):
        a = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        b = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        assert a.to_values() == b.to_values()
        assert a.error_bound > 0.0

    def test_fit_job_memoized(self, monkeypatch):
        from repro.engine.store import default_store

        job = UipcFitJob("solo", ("gamess",), config_solo(), TINY)
        first = default_store().compute(job)
        calls = {"n": 0}

        def exploding_run(self):
            calls["n"] += 1
            raise AssertionError("fit should have been cached")

        monkeypatch.setattr(UipcFitJob, "run", exploding_run)
        assert default_store().compute(job) == first
        assert calls["n"] == 0

    def test_roundtrip_values(self):
        surrogate = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        values = surrogate.to_values()
        again = UipcSurrogate.from_values(values, ("gamess",))
        assert again.to_values() == values
        assert again.anchors == surrogate.anchors
        assert again.error_bound == surrogate.error_bound

    def test_error_bound_honest_on_fresh_seed(self):
        from repro.engine.store import default_store

        surrogate = fit_uipc_surrogate("solo", ("xalancbmk",), config_solo(),
                                       TINY)
        x = 88  # off-anchor, off-validation
        fresh = replace(TINY, seed=derive_seed(TINY.seed, "fresh-heldout", 0))
        exact = default_store().compute(
            SimJob.solo("xalancbmk", config_solo(x), fresh)
        )
        assert abs(surrogate.predict(x) - exact[0]) <= surrogate.error_bound

    def test_out_of_range_raises(self):
        surrogate = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        with pytest.raises(ValueError):
            surrogate.predict(8)
        with pytest.raises(ValueError):
            surrogate.predict_many([96, 200])

    def test_predict_many_matches_scalar(self):
        surrogate = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        xs = [16, 40, 96, 150, 192]
        batched = surrogate.predict_many(xs)
        assert list(batched) == [surrogate.predict(x) for x in xs]

    def test_evaluate_grid_shape_and_mean_consistency(self):
        surrogate = fit_uipc_surrogate("solo", ("gamess",), config_solo(), TINY)
        xs = [32, 96, 192]
        grid = surrogate.evaluate_grid(xs, TINY)
        assert grid.shape == (1, 3, TINY.n_samples)
        # Draws at an anchor stay inside that anchor's replicate range.
        k = surrogate.anchors.index(96)
        lo, hi = surrogate.quantiles[0, k, 0], surrogate.quantiles[0, k, -1]
        assert np.all((lo <= grid[0, xs.index(96)])
                      & (grid[0, xs.index(96)] <= hi))
        # Extreme uniforms hit the extreme replicates exactly (with 2
        # replicates, plotting positions clip at u<=0.25 and u>=0.75).
        draws = surrogate.sample([96], np.array([0.1, 0.9]))
        assert draws[0, 0] == lo and draws[0, 1] == hi

    def test_fit_job_requires_canonical_config(self):
        with pytest.raises(ValueError):
            UipcFitJob("solo", ("gamess",), config_solo(96), TINY)

    def test_calibration_jobs_enumerates_fit_inputs(self):
        grid = UipcGrid()
        jobs = calibration_jobs("solo", ("gamess",), config_solo(), TINY, grid)
        n_anchors = len(grid.anchor_values("solo", 192))
        n_val = len(grid.validation_values("solo", 192)) * grid.n_val_reps
        assert len(jobs) == n_anchors + n_val
        kinds = {job.kind for job in jobs}
        assert kinds == {"solo_samples", "solo"}

    def test_fit_key_disjoint_from_sim_keys(self):
        fit = UipcFitJob("solo", ("gamess",), config_solo(), TINY)
        sim_keys = {
            SimJob.solo("gamess", config_solo(x), TINY).key
            for x in (16, 96, 192)
        }
        assert fit.key not in sim_keys


class TestFidelityDispatch:
    def test_solo_anchor_values_match_exact_tier(self):
        fid = tiny_surrogate_fidelity()
        configs = [config_solo(x) for x in (16, 96, 192)]
        surrogate_values = solo_uipc_many("gamess", configs, fid)
        exact_values = solo_uipc_many("gamess", configs, TINY)
        assert surrogate_values == exact_values

    def test_pair_off_anchor_within_bound(self):
        from repro.engine.store import default_store

        fid = tiny_surrogate_fidelity()
        base = config_all_shared()
        member = base.with_rob_partition(72, 120)
        (pred,) = pair_uipc_many("web_search", "gamess", (member,), fid)
        exact = default_store().compute(
            SimJob.pair("web_search", "gamess", member, TINY)
        )
        job = UipcFitJob("pair", ("web_search", "gamess"), base, TINY,
                         fid.grid)
        bound = job.load(default_store().compute(job)).error_bound
        assert abs(pred[0] - exact[0]) <= bound
        assert abs(pred[1] - exact[1]) <= bound

    def test_unsupported_family_falls_back_to_exact(self):
        fid = tiny_surrogate_fidelity()
        configs = (config_dynamic_rob(),)
        surrogate_values = pair_uipc_many("web_search", "gamess", configs, fid)
        exact_values = pair_uipc_many("web_search", "gamess", configs, TINY)
        assert surrogate_values == exact_values

    def test_out_of_range_falls_back_to_exact(self):
        fid = tiny_surrogate_fidelity()
        configs = (config_solo(8),)  # below the smallest anchor (16)
        assert (solo_uipc_many("gamess", configs, fid)
                == solo_uipc_many("gamess", configs, TINY))

    def test_grid_jobs_identity_at_exact_tier(self):
        jobs = [SimJob.solo("gamess", config_solo(x), TINY) for x in (16, 96)]
        assert grid_jobs(jobs, TINY) == jobs
        assert grid_jobs(jobs, Fidelity("quick", TINY)) == jobs

    def test_grid_jobs_collapses_families(self):
        fid = tiny_surrogate_fidelity()
        jobs = [
            SimJob.solo("gamess", config_solo(x), TINY)
            for x in (16, 48, 96, 192)
        ] + [SimJob.pair("web_search", "gamess", config_dynamic_rob(), TINY)]
        collapsed = grid_jobs(jobs, fid)
        fits = [j for j in collapsed if isinstance(j, UipcFitJob)]
        passthrough = [j for j in collapsed if isinstance(j, SimJob)]
        assert len(fits) == 1  # one family across all four sweep points
        assert fits[0].config == config_solo()
        assert passthrough == [jobs[-1]]  # unsupported family stays exact

    def test_surrogate_never_leaks_into_exact_paths(self, monkeypatch):
        """REPRO_FIDELITY=surrogate must not change explicit exact runs."""
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        configs = [config_solo(x) for x in (16, 96)]
        baseline = solo_uipc_many("gamess", configs, TINY)
        baseline_keys = [
            SimJob.solo("gamess", c, TINY).key for c in configs
        ]

        monkeypatch.setenv("REPRO_FIDELITY", "surrogate")
        assert solo_uipc_many("gamess", configs, TINY) == baseline
        assert [
            SimJob.solo("gamess", c, TINY).key for c in configs
        ] == baseline_keys
        # Explicit exact Fidelity objects are equally immune.
        assert solo_uipc_many("gamess", configs, Fidelity("quick", TINY)) \
            == baseline

    def test_env_surrogate_fig06_jobs_are_fit_jobs(self, monkeypatch):
        import repro.experiments.fig06_rob_sensitivity as fig06

        monkeypatch.setenv("REPRO_FIDELITY", "surrogate")
        jobs = fig06.jobs()
        assert jobs and all(isinstance(j, UipcFitJob) for j in jobs)
        monkeypatch.setenv("REPRO_FIDELITY", "quick")
        jobs = fig06.jobs()
        assert jobs and all(isinstance(j, SimJob) for j in jobs)
