"""End-to-end integration tests: the full Stretch story on real components.

These exercise the paper's core claims at reduced scale:

1. B-mode shifts ROB capacity and speeds up an MLP-hungry batch co-runner
   at a modest latency-sensitive cost (§VI-A);
2. the software monitor closes the loop: under a diurnal load it engages
   B-mode off-peak without materially violating QoS (§IV-C, §VI-D);
3. the public API demo wires everything together.
"""

import pytest

from repro import quick_colocation_demo
from repro.core.colocation import measure_colocation_performance
from repro.core.server import ColocatedServer
from repro.core.stretch import StretchMode
from repro.cpu.sampling import SamplingConfig
from repro.qos.diurnal import web_search_cluster_load
from repro.workloads.registry import get_profile

SAMPLING = SamplingConfig(n_samples=3, warmup_instructions=4000,
                          measure_instructions=4000, seed=21)


@pytest.fixture(scope="module")
def ws_zeusmp_performance():
    return measure_colocation_performance(
        get_profile("web_search"), get_profile("zeusmp"), sampling=SAMPLING
    )


class TestStretchTradeoff:
    def test_b_mode_speeds_up_batch(self, ws_zeusmp_performance):
        speedup = ws_zeusmp_performance.batch_speedup(StretchMode.B_MODE)
        assert speedup > 0.02  # zeusmp is the high-ROB-sensitivity exemplar

    def test_b_mode_costs_ls_less_than_it_gains(self, ws_zeusmp_performance):
        perf = ws_zeusmp_performance
        ls_loss = 1.0 - (
            perf.per_mode[StretchMode.B_MODE].ls_uipc
            / perf.per_mode[StretchMode.BASELINE].ls_uipc
        )
        assert ls_loss < perf.batch_speedup(StretchMode.B_MODE) + 0.25

    def test_q_mode_boosts_ls(self, ws_zeusmp_performance):
        perf = ws_zeusmp_performance
        assert (
            perf.per_mode[StretchMode.Q_MODE].ls_uipc
            > perf.per_mode[StretchMode.B_MODE].ls_uipc
        )

    def test_q_mode_costs_batch(self, ws_zeusmp_performance):
        assert ws_zeusmp_performance.batch_speedup(StretchMode.Q_MODE) < 0.0


class TestClosedLoop:
    def test_diurnal_day_bmode_only(self, ws_zeusmp_performance):
        """The paper's case-study configuration: B-mode or equal partitioning."""
        server = ColocatedServer(
            get_profile("web_search"), ws_zeusmp_performance, seed=4,
            q_mode_available=False,
        )
        timeline = server.run_day(
            web_search_cluster_load, window_minutes=30, requests_per_window=800
        )
        # The monitor finds off-peak slack and engages B-mode there.
        assert timeline.bmode_fraction > 0.1
        # QoS violations remain rare.
        assert timeline.violation_rate < 0.25
        # Batch throughput beats never-engaging Stretch.
        baseline = ws_zeusmp_performance.per_mode[StretchMode.BASELINE].batch_uipc
        assert timeline.batch_throughput_gain(baseline) > 0.0

    def test_q_mode_trades_batch_for_qos(self, ws_zeusmp_performance):
        """With Q-mode provisioned, peak-hour QoS improves at batch cost."""
        def run(q_mode_available: bool):
            server = ColocatedServer(
                get_profile("web_search"), ws_zeusmp_performance, seed=4,
                q_mode_available=q_mode_available,
            )
            return server.run_day(web_search_cluster_load, window_minutes=30,
                                  requests_per_window=800)

        with_q = run(True)
        without_q = run(False)
        assert with_q.violation_rate <= without_q.violation_rate + 0.05
        baseline = ws_zeusmp_performance.per_mode[StretchMode.BASELINE].batch_uipc
        assert with_q.batch_throughput_gain(baseline) <= (
            without_q.batch_throughput_gain(baseline) + 0.02
        )

    def test_b_mode_concentrates_off_peak(self, ws_zeusmp_performance):
        server = ColocatedServer(
            get_profile("web_search"), ws_zeusmp_performance, seed=4
        )
        timeline = server.run_day(
            web_search_cluster_load, window_minutes=30, requests_per_window=800
        )
        off_peak = [w for w in timeline.windows if w.load_fraction < 0.6]
        on_peak = [w for w in timeline.windows if w.load_fraction > 0.9]
        if off_peak and on_peak:
            off = sum(w.mode is StretchMode.B_MODE for w in off_peak) / len(off_peak)
            on = sum(w.mode is StretchMode.B_MODE for w in on_peak) / len(on_peak)
            assert off >= on


class TestPublicAPI:
    def test_quick_demo(self):
        summary = quick_colocation_demo(seed=3)
        assert summary["b_mode_batch_speedup"] > 0.0
        assert 0.0 < summary["b_mode_ls_factor"] <= summary["q_mode_ls_factor"] <= 1.0
