"""Service-level observability integration (`repro.service` + `repro.obs`).

The load-bearing guarantees:

* attaching the SLO engine and flight recorder to a live service changes
  **nothing** about the simulation — the timeline is bit-identical to a
  bare run on the same feed and seed;
* `status()` surfaces the SLO and recorder sections, `whatif()` carries
  the error-budget impact column, and the control-plane `dump` verb
  writes an analyzable postmortem bundle;
* an abnormal stop (feed stall) auto-dumps the bundle so the evidence
  survives the exit that needs explaining.
"""

import json

import pytest

from repro.core.monitor import MonitorConfig
from repro.obs import FlightRecorder, MetricsRegistry, analyze_bundle
from repro.obs.sampler import JsonlSink
from repro.service import LoadFeed, handle_command

from tests.test_service import (  # noqa: F401  (surrogate is a fixture)
    make_engine,
    make_service,
    surrogate,
    timelines_equal,
)

SPIKE = "phases:flat@0.3x4,flat@1.2x8"
TIGHT_SLO = "qos:violation_rate<0.01@2/4x2"


def observed_service(surrogate, **kwargs):
    kwargs.setdefault("slos", [TIGHT_SLO])
    kwargs.setdefault("recorder", FlightRecorder(pre_windows=4,
                                                 post_windows=2))
    return make_service(surrogate, feed=SPIKE, **kwargs)


class TestBitIdentity:
    def test_observers_do_not_perturb_the_fleet(self, surrogate):
        bare = make_service(surrogate, feed=SPIKE)
        bare.run()
        observed = observed_service(
            surrogate, registry=MetricsRegistry()
        )
        observed.run()
        assert timelines_equal(bare.timeline, observed.timeline)
        # The run was not trivially quiet: the spike produced violations
        # and the recorder actually captured frames.
        assert observed.recorder.windows_seen == observed.window
        assert observed.timeline.violations.sum() > 0

    def test_violator_capture_is_off_by_default(self, surrogate):
        service = make_service(surrogate, feed=SPIKE)
        assert service._stepper.capture_violators == 0
        service.advance(2)
        assert service._stepper.last_violators == []

    def test_captured_violators_are_consistent(self, surrogate):
        service = observed_service(surrogate)
        service.run()
        frames = [f for f in service.recorder.frames if f["violators"]]
        assert frames, "spike feed should produce violating windows"
        for frame in frames:
            assert len(frame["violators"]) <= service.recorder.top_k
            for v in frame["violators"]:
                assert 0 <= v["server"] < service.state.n_servers
                assert v["day_violations"] >= 1
                assert v["mode"] in (
                    "baseline", "b-mode", "q-mode", "throttled"
                )


class TestStatusAndWhatif:
    def test_status_has_slo_and_recorder_sections(self, surrogate):
        service = observed_service(surrogate)
        service.advance(6)
        status = service.status()
        assert status["slo"]["qos"]["target"] == pytest.approx(0.01)
        assert "budget_remaining" in status["slo"]["qos"]
        assert status["recorder"]["frames"] == 6
        bare = make_service(surrogate, feed=SPIKE)
        assert "slo" not in bare.status()
        assert "recorder" not in bare.status()

    def test_whatif_carries_budget_impact_diff(self, surrogate):
        service = observed_service(surrogate)
        service.advance(5)
        result = service.whatif(policy="uniform", horizon=4)
        budget = result["slo_budget"]["qos"]
        assert set(budget) == {"live", "whatif", "diff"}
        assert budget["diff"] == pytest.approx(
            budget["whatif"] - budget["live"]
        )
        assert result["diff"]["slo_budget.qos"] == budget["diff"]

    def test_alerts_fire_and_reach_the_sink(self, surrogate, tmp_path):
        path = tmp_path / "events.jsonl"
        service = observed_service(surrogate, sink=JsonlSink(path))
        service.run()
        assert service.slo.status()["qos"]["alerts_fired"] >= 1
        kinds = [json.loads(line)["type"] for line in path.read_text().
                 splitlines()]
        assert "slo_alert" in kinds
        # run() drains alerts as it serves; none may be left pending.
        assert service.drain_alerts() == []


class TestDumpVerb:
    def test_control_plane_dump_writes_bundle(self, surrogate, tmp_path):
        service = observed_service(surrogate)
        service.run()
        path = tmp_path / "bundle.jsonl"
        response = handle_command(
            service, {"cmd": "dump", "path": str(path), "id": 3}
        )
        assert response["ok"] and response["id"] == 3
        assert response["result"]["captures"] >= 1
        report = analyze_bundle(path)
        assert report["meta"]["service"]["feed"] == service.feed.name
        assert report["captures"][0]["primary"] == "load_spike"

    def test_dump_without_recorder_is_an_error(self, surrogate):
        service = make_service(surrogate, feed=SPIKE)
        response = handle_command(service, {"cmd": "dump"})
        assert not response["ok"]
        assert "recorder" in response["error"]

    def test_feed_stall_auto_dumps(self, surrogate, tmp_path):
        class StallingFeed(LoadFeed):
            name = "stalling"

            def load(self, window, hour):
                return 0.5 if window < 2 else None

        path = tmp_path / "postmortem.jsonl"
        service = make_service(
            surrogate, feed=StallingFeed(), max_gap_windows=1,
            slos=[TIGHT_SLO], recorder=True, postmortem_path=str(path),
        )
        summary = service.run()
        assert summary["stop_reason"] == "feed_stalled"
        bundle = analyze_bundle(path)
        assert bundle["meta"]["reason"] == "feed_stalled"
        assert any(e.get("type") == "stop" for e in bundle["events"])

    def test_requested_stop_does_not_auto_dump(self, surrogate, tmp_path):
        path = tmp_path / "postmortem.jsonl"
        service = observed_service(surrogate, postmortem_path=str(path))
        service.advance(3)
        service.stop("requested")
        assert not path.exists()


class TestReconfigure:
    def test_reconfigure_keeps_violator_capture_on(self, surrogate):
        service = observed_service(surrogate)
        service.advance(3)
        service.reconfigure(monitor=MonitorConfig(throttle_windows=4))
        assert service._stepper.capture_violators == service.recorder.top_k
        events = [e for e in service.recorder.events
                  if e.get("type") == "reconfigure"]
        assert len(events) == 1 and events[0]["window"] == 3

    def test_recorder_true_builds_default_recorder(self, surrogate):
        registry = MetricsRegistry()
        service = make_service(
            surrogate, feed=SPIKE, recorder=True, registry=registry
        )
        assert isinstance(service.recorder, FlightRecorder)
        assert service.recorder.registry is registry
        assert service._stepper.capture_violators == service.recorder.top_k
