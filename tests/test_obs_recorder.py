"""Tests for the violation flight recorder (`repro.obs.recorder`).

The load-bearing guarantees:

* the frame ring really is bounded — wraparound keeps exactly the last
  ``capacity`` windows in order;
* an SLO alert freezes the surrounding pre/post windows into a capture,
  including across ring wraparound and for overlapping alerts;
* a dumped bundle round-trips (dump → load → identical parts) and the
  analyzer attributes synthetic captures to the right primary cause;
* attaching a recorder to a live fleet changes nothing (bit-identity is
  covered service-side in ``tests/test_service_obs.py``).
"""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import (
    FlightRecorder,
    analyze_bundle,
    attribute_capture,
    load_bundle,
)


def record(window: int, *, load: float = 0.5, violations: int = 0,
           servers: int = 100, tail: float = 40.0) -> dict:
    return {
        "window": window, "hour": window / 6.0, "cluster_load": load,
        "servers": servers, "violations": violations, "throttled": 0,
        "mode_baseline": 10, "mode_b": 80, "mode_q": 10,
        "mean_tail_ms": tail, "mean_batch_uipc": 0.5,
    }


def violator(server: int, mode: str = "b-mode", day: int = 1) -> dict:
    return {
        "server": server, "day_violations": day, "mode": mode,
        "mode_after": "q-mode", "violation_streak": 1, "throttle_left": 0,
    }


def alert(window: int) -> dict:
    return {
        "type": "slo_alert", "slo": "qos", "policy": "page",
        "window": window, "hour": window / 6.0, "burn_fast": 4.0,
        "burn_slow": 2.0, "threshold": 2.0, "fast_windows": 2,
        "slow_windows": 4, "budget_remaining": 0.5,
    }


class TestRingBuffer:
    def test_ring_wraparound_keeps_last_capacity_windows(self):
        recorder = FlightRecorder(capacity=5, pre_windows=2)
        for k in range(12):
            recorder.observe(record(k))
        assert len(recorder.frames) == 5
        assert [f["window"] for f in recorder.frames] == [7, 8, 9, 10, 11]
        assert recorder.windows_seen == 12

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="fit inside"):
            FlightRecorder(capacity=4, pre_windows=4)

    def test_frames_carry_violators_and_gap_flag(self):
        recorder = FlightRecorder(capacity=4, pre_windows=1)
        recorder.observe(
            dict(record(0), gap_filled=True), violators=[violator(3)]
        )
        frame = recorder.frames[0]
        assert frame["gap_filled"] is True
        assert frame["violators"][0]["server"] == 3

    def test_registry_gauges(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(capacity=4, pre_windows=1,
                                  registry=registry)
        recorder.observe(record(0))
        assert registry.gauge("fleet.recorder.frames").value == 1.0


class TestCaptures:
    def test_alert_captures_pre_and_post_windows(self):
        recorder = FlightRecorder(capacity=20, pre_windows=2, post_windows=2)
        for k in range(4):
            recorder.observe(record(k))
        recorder.observe(record(4), events=[alert(4)])
        assert recorder.open_captures == 1
        recorder.observe(record(5))
        recorder.observe(record(6))
        assert recorder.open_captures == 0
        assert len(recorder.captures) == 1
        capture = recorder.captures[0]
        assert [f["window"] for f in capture["frames"]] == [2, 3, 4, 5, 6]
        assert capture["lo_window"] == 2 and capture["hi_window"] == 6
        assert capture["alert"]["window"] == 4

    def test_capture_straddles_ring_wraparound(self):
        recorder = FlightRecorder(capacity=4, pre_windows=2, post_windows=1)
        for k in range(40):
            recorder.observe(
                record(k), events=[alert(k)] if k == 37 else ()
            )
        assert [f["window"] for f in recorder.captures[0]["frames"]] == (
            [35, 36, 37, 38]
        )

    def test_overlapping_alerts_get_separate_captures(self):
        recorder = FlightRecorder(capacity=20, pre_windows=1, post_windows=2)
        recorder.observe(record(0))
        recorder.observe(record(1), events=[alert(1)])
        recorder.observe(record(2), events=[alert(2)])
        for k in (3, 4):
            recorder.observe(record(k))
        assert len(recorder.captures) == 2
        assert recorder.captures[0]["alert"]["window"] == 1
        assert recorder.captures[1]["alert"]["window"] == 2

    def test_zero_post_windows_seals_immediately(self):
        recorder = FlightRecorder(capacity=8, pre_windows=1, post_windows=0)
        recorder.observe(record(0))
        recorder.observe(record(1), events=[alert(1)])
        assert recorder.open_captures == 0
        assert len(recorder.captures) == 1


class TestBundleRoundtrip:
    def make_recorder(self) -> FlightRecorder:
        recorder = FlightRecorder(capacity=10, pre_windows=1, post_windows=1)
        for k in range(6):
            recorder.observe(
                record(k, violations=5 if k == 3 else 0),
                violators=[violator(7)] if k == 3 else None,
                events=[alert(3)] if k == 3 else (),
            )
        recorder.note({"type": "stop", "reason": "test", "window": 6})
        return recorder

    def test_dump_and_load_roundtrip(self, tmp_path):
        recorder = self.make_recorder()
        path = tmp_path / "bundle.jsonl"
        result = recorder.dump(path, reason="unit", meta={"feed": "flat"})
        assert result["frames"] == 6 and result["captures"] == 1
        bundle = load_bundle(path)
        assert bundle["meta"]["reason"] == "unit"
        assert bundle["meta"]["service"]["feed"] == "flat"
        assert [f["window"] for f in bundle["frames"]] == list(range(6))
        assert bundle["captures"][0]["alert"]["window"] == 3
        assert bundle["events"][-1]["reason"] == "test"
        assert recorder.dumps == 1

    def test_dump_seals_open_captures(self, tmp_path):
        recorder = FlightRecorder(capacity=8, pre_windows=1, post_windows=5)
        recorder.observe(record(0))
        recorder.observe(record(1), events=[alert(1)])
        assert recorder.open_captures == 1
        recorder.dump(tmp_path / "b.jsonl", reason="sigint")
        bundle = load_bundle(tmp_path / "b.jsonl")
        assert len(bundle["captures"]) == 1

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            load_bundle(path)
        path.write_text(json.dumps({"type": "frame", "window": 0}) + "\n")
        with pytest.raises(ValueError, match="postmortem_meta"):
            load_bundle(path)


class TestAttribution:
    def capture(self, frames, alert_window: int) -> dict:
        return {
            "alert": alert(alert_window), "frames": frames,
            "lo_window": frames[0]["window"], "hi_window": frames[-1]["window"],
        }

    def test_load_spike_attribution(self):
        frames = [record(k, load=0.3) for k in range(3)]
        frames += [
            dict(record(k, load=1.2, violations=20),
                 violators=[violator(100 + k, mode="baseline")])
            for k in (3, 4)
        ]
        result = attribute_capture(self.capture(frames, 3))
        assert result["primary"] == "load_spike"
        assert result["evidence"]["load_peak"] == pytest.approx(1.2)
        assert result["evidence"]["load_baseline"] == pytest.approx(0.3)

    def test_mode_switch_lag_attribution(self):
        # Flat load, but every violator was stretched (B-mode) when it
        # missed QoS — different servers each window, so not stragglers.
        frames = [record(k, load=0.5) for k in range(3)]
        frames += [
            dict(record(k, load=0.5, violations=10),
                 violators=[violator(200 + 10 * k + i) for i in range(3)])
            for k in (3, 4)
        ]
        result = attribute_capture(self.capture(frames, 3))
        assert result["primary"] == "mode_switch_lag"
        assert result["scores"]["load_spike"] == 0.0

    def test_straggler_attribution(self):
        # The same two servers violate in every frame, in baseline mode
        # (so mode-switch lag cannot claim it).
        frames = [
            dict(record(k, load=0.5, violations=2),
                 violators=[violator(7, mode="baseline", day=k + 1),
                            violator(13, mode="baseline", day=k + 1)])
            for k in range(5)
        ]
        result = attribute_capture(self.capture(frames, 2))
        assert result["primary"] == "straggler"
        assert set(result["evidence"]["repeat_servers"]) == {7, 13}

    def test_inconclusive_when_no_signal_clears_threshold(self):
        frames = [record(k, load=0.5) for k in range(5)]
        result = attribute_capture(self.capture(frames, 2))
        assert result["primary"] == "inconclusive"

    def test_analyze_bundle_end_to_end(self, tmp_path):
        recorder = FlightRecorder(capacity=20, pre_windows=2, post_windows=1)
        for k in range(3):
            recorder.observe(record(k, load=0.3))
        recorder.observe(
            record(3, load=1.2, violations=30),
            violators=[violator(5, mode="baseline")],
            events=[alert(3)],
        )
        recorder.observe(record(4, load=1.2, violations=25),
                         violators=[violator(6, mode="baseline")])
        path = tmp_path / "bundle.jsonl"
        recorder.dump(path, reason="unit")
        report = analyze_bundle(path)
        assert report["summary"]["frames"] == 5
        assert report["summary"]["alerts"] == 1
        assert report["summary"]["peak_load"] == pytest.approx(1.2)
        assert report["captures"][0]["primary"] == "load_spike"

    def test_violation_rate_summary_guards_zero_servers(self, tmp_path):
        recorder = FlightRecorder(capacity=4, pre_windows=1)
        recorder.observe(record(0, servers=0))
        path = tmp_path / "b.jsonl"
        recorder.dump(path)
        assert analyze_bundle(path)["summary"]["violation_rate"] == 0.0
