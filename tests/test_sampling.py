"""Tests for the sampling methodology (SimFlex-style)."""

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.sampling import (
    SamplingConfig,
    mean_uipc,
    sample_colocation,
    sample_solo,
)
from repro.workloads.registry import get_profile


class TestSamplingConfig:
    def test_defaults_valid(self):
        SamplingConfig()

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            SamplingConfig(n_samples=0)
        with pytest.raises(ValueError):
            SamplingConfig(measure_instructions=0)

    def test_trace_length_covers_run(self):
        c = SamplingConfig(warmup_instructions=1000, measure_instructions=1000)
        assert c.trace_length > 2 * (c.warmup_instructions + c.measure_instructions)

    def test_max_cycles_scales(self):
        c = SamplingConfig(measure_instructions=100)
        assert c.max_cycles == 100 * c.max_cycles_per_instruction

    def test_hashable(self):
        assert hash(SamplingConfig()) == hash(SamplingConfig())


class TestSampleSolo:
    def test_one_result_per_sample(self, tiny_sampling, web_search_profile):
        results = sample_solo(
            web_search_profile, CoreConfig().single_thread(192), tiny_sampling
        )
        assert len(results) == tiny_sampling.n_samples

    def test_reproducible(self, tiny_sampling, zeusmp_profile):
        config = CoreConfig().single_thread(192)
        a = sample_solo(zeusmp_profile, config, tiny_sampling)
        b = sample_solo(zeusmp_profile, config, tiny_sampling)
        assert mean_uipc(a) == mean_uipc(b)

    def test_samples_differ(self, zeusmp_profile):
        sampling = SamplingConfig(n_samples=2, warmup_instructions=500,
                                  measure_instructions=500, seed=1)
        results = sample_solo(zeusmp_profile, CoreConfig().single_thread(192), sampling)
        assert results[0].threads[0].uipc != results[1].threads[0].uipc

    def test_checkpoint_warming_improves_llc(self, zeusmp_profile):
        base = dict(n_samples=1, warmup_instructions=1500,
                    measure_instructions=1500, seed=3)
        warm = sample_solo(zeusmp_profile, CoreConfig().single_thread(192),
                           SamplingConfig(checkpoint_warming=True, **base))
        cold = sample_solo(zeusmp_profile, CoreConfig().single_thread(192),
                           SamplingConfig(checkpoint_warming=False, **base))
        assert mean_uipc(warm) > mean_uipc(cold)


class TestSampleColocation:
    def test_thread_assignment(self, tiny_sampling, web_search_profile, zeusmp_profile):
        results = sample_colocation(
            web_search_profile, zeusmp_profile, CoreConfig(), tiny_sampling
        )
        assert results[0].threads[0].workload == "web_search"
        assert results[0].threads[1].workload == "zeusmp"

    def test_both_threads_reach_target(self, tiny_sampling, web_search_profile,
                                       zeusmp_profile):
        results = sample_colocation(
            web_search_profile, zeusmp_profile, CoreConfig(), tiny_sampling
        )
        for result in results:
            assert all(
                t.instructions >= tiny_sampling.measure_instructions
                for t in result.threads
            )


class TestMeanUipc:
    def test_average(self, tiny_sampling, gamess_profile):
        results = sample_solo(
            gamess_profile, CoreConfig().single_thread(192), tiny_sampling
        )
        expected = sum(r.threads[0].uipc for r in results) / len(results)
        assert mean_uipc(results) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_uipc([])
