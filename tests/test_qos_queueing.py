"""Tests for the discrete-event queueing simulator."""

import numpy as np
import pytest

from repro.qos.queueing import LatencyStats, MMPPConfig, ServiceSimulator
from repro.workloads.profiles import QoSSpec

QOS = QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=8.0, service_cv=1.0)


def make_service(**kwargs) -> ServiceSimulator:
    return ServiceSimulator(QOS, n_workers=8, seed=1, **kwargs)


class TestMMPPConfig:
    def test_defaults_valid(self):
        MMPPConfig()

    def test_rate_ordering(self):
        with pytest.raises(ValueError):
            MMPPConfig(calm_rate=2.0, burst_rate=1.0)

    def test_burst_fraction_bounds(self):
        with pytest.raises(ValueError):
            MMPPConfig(burst_fraction=0.0)

    def test_mean_multiplier(self):
        m = MMPPConfig(calm_rate=1.0, burst_rate=3.0, burst_fraction=0.5)
        assert m.mean_multiplier == pytest.approx(2.0)


class TestLatencyStats:
    def test_from_latencies(self):
        stats = LatencyStats.from_latencies(np.array([1.0, 2.0, 3.0, 100.0]))
        assert stats.n_requests == 4
        assert stats.mean == pytest.approx(26.5)
        assert stats.max == 100.0

    def test_percentile_accessors(self):
        stats = LatencyStats.from_latencies(np.linspace(1, 100, 100))
        assert stats.percentile(50.0) == stats.p50
        assert stats.percentile(95.0) == stats.p95
        assert stats.percentile(99.0) == stats.p99

    def test_untracked_percentile(self):
        stats = LatencyStats.from_latencies(np.array([1.0]))
        with pytest.raises(ValueError):
            stats.percentile(90.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats.from_latencies(np.array([]))


class TestRun:
    def test_latency_at_least_service_time(self):
        stats = make_service().run(0.01, n_requests=2000)
        # Sojourn time includes the full service time.
        assert stats.mean >= QOS.base_service_ms * 0.8

    def test_latency_monotone_in_rate(self):
        service = make_service()
        low = service.run(0.05, n_requests=4000)
        high = service.run(0.8, n_requests=4000)
        assert high.p99 >= low.p99

    def test_perf_factor_scales_service(self):
        service = make_service()
        full = service.run(0.05, perf_factor=1.0, n_requests=4000)
        half = service.run(0.05, perf_factor=0.5, n_requests=4000)
        assert half.mean == pytest.approx(2 * full.mean, rel=0.25)

    def test_common_random_numbers(self):
        service = make_service()
        a = service.run(0.2, n_requests=1000)
        b = service.run(0.2, n_requests=1000)
        assert a.p99 == b.p99

    def test_seed_offset_changes_draws(self):
        service = make_service()
        a = service.run(0.2, n_requests=1000, seed_offset=0)
        b = service.run(0.2, n_requests=1000, seed_offset=1)
        assert a.p99 != b.p99

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            make_service().run(0.0)

    def test_invalid_perf_factor(self):
        with pytest.raises(ValueError):
            make_service().run(0.1, perf_factor=0.0)
        with pytest.raises(ValueError):
            make_service().run(0.1, perf_factor=1.5)


class TestPeakLoad:
    def test_peak_meets_qos(self):
        service = make_service()
        peak = service.peak_load(n_requests=6000)
        assert service.meets_qos(service.run(peak, n_requests=6000))

    def test_above_peak_violates(self):
        service = make_service()
        peak = service.peak_load(n_requests=6000)
        assert not service.meets_qos(service.run(peak * 1.2, n_requests=6000))

    def test_peak_cached(self):
        service = make_service()
        assert service.peak_load(n_requests=6000) == service.peak_load(n_requests=6000)

    def test_latency_vs_load_series(self):
        service = make_service()
        points = service.latency_vs_load([0.2, 0.6, 1.0], n_requests=4000)
        assert [p[0] for p in points] == [0.2, 0.6, 1.0]
        assert points[-1][1].p99 >= points[0][1].p99

    def test_latency_vs_load_bad_fraction(self):
        with pytest.raises(ValueError):
            make_service().latency_vs_load([2.0], n_requests=1000)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ServiceSimulator(QOS, n_workers=0)
