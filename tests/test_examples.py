"""End-to-end runs of the example scripts (the user-facing front door)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "stand-alone full-core UIPC" in out
        assert "b-mode" in out and "q-mode" in out
        assert "batch speedup" in out

    def test_quickstart_custom_pair(self):
        out = run_example("quickstart.py", "data_serving", "gamess")
        assert "data_serving" in out and "gamess" in out

    def test_quickstart_rejects_batch_as_ls(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py"), "zeusmp", "mcf"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode != 0

    def test_slack_analysis(self):
        out = run_example("slack_analysis.py")
        assert "latency vs load" in out
        assert "Minimum performance" in out
        assert "duty cycle" in out

    def test_datacenter_colocation(self):
        out = run_example("datacenter_colocation.py")
        assert "Simulating 24 hours" in out
        assert "B-mode engaged" in out
        assert "violation rate" in out.lower()

    def test_design_space_exploration(self):
        out = run_example("design_space_exploration.py")
        assert "56-136" in out and "32-160" in out
        assert "QoS-safe" in out

    def test_datacenter_adaptive_flag(self):
        out = run_example("datacenter_colocation.py", "zeusmp", "--adaptive")
        assert "adaptive multi-B-mode policy" in out
        assert "B-mode engaged" in out

    def test_cluster_capacity(self):
        out = run_example("cluster_capacity.py", timeout=400)
        assert "over-provisioning" in out
        assert "batch gain" in out
