"""Tests for the live fleet service (`repro.service`).

The load-bearing guarantees:

* **checkpoint/resume bit-identity** — a service killed mid-day and
  resumed from its checkpoint produces a `FleetTimeline` exactly equal
  (every array) to one that never stopped;
* **what-if isolation** — a shadow query never perturbs the live fleet:
  the state arrays are bytewise unchanged and subsequent windows are
  bit-identical to a query-free run;
* **graceful feed degradation** — gaps are filled by holding the last
  window, and a stall beyond `max_gap_windows` stops the service
  cleanly rather than free-running on stale data;
* the control plane answers every command (and every malformed request)
  without ever taking the serve loop down.
"""

import io
import json

import numpy as np
import pytest

from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.monitor import MonitorConfig
from repro.core.stretch import StretchMode
from repro.engine.store import ResultStore
from repro.fleet import (
    FleetConfig,
    FleetEngine,
    SurrogateGrid,
    TailSurrogate,
    fit_tail_surrogate,
    resolve_load_curve,
)
from repro.obs import MetricsRegistry, SpanTracer
from repro.obs.sampler import JsonlSink
from repro.service import (
    COMMANDS,
    ControlPlane,
    CurveFeed,
    FleetService,
    LoadFeed,
    Phase,
    PhaseFeed,
    ReplayFeed,
    handle_command,
    load_checkpoint,
    make_feed,
    parse_phases,
    replay_curve,
    save_checkpoint,
)
from repro.workloads.registry import get_profile


def performance_model() -> ColocationPerformance:
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(0.52, 0.50),
            StretchMode.B_MODE: ModePerformance(0.46, 0.58),
            StretchMode.Q_MODE: ModePerformance(0.58, 0.40),
        },
    )


TEST_RPW = 400
TEST_GRID = SurrogateGrid(
    loads=(0.02, 0.3, 0.6, 0.9, 1.2),
    n_requests=TEST_RPW,
    peak_requests=20000,
    n_reps=6,
    n_val_reps=2,
    seed=0,
)


def fleet_config(**kwargs) -> FleetConfig:
    defaults = dict(
        n_servers=8,
        window_minutes=120.0,
        requests_per_window=TEST_RPW,
        seed=5,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def surrogate() -> TailSurrogate:
    perf_factors = FleetEngine(
        get_profile("web_search"), performance_model(), fleet_config()
    ).perf_factors
    return fit_tail_surrogate(
        get_profile("web_search").qos, perf_factors, TEST_GRID
    )


def make_engine(surrogate, **cfg_kwargs) -> FleetEngine:
    return FleetEngine(
        get_profile("web_search"),
        performance_model(),
        fleet_config(**cfg_kwargs),
        surrogate=surrogate,
    )


def make_service(surrogate, feed="web_search", **kwargs) -> FleetService:
    return FleetService(make_engine(surrogate), feed, **kwargs)


def timelines_equal(a, b) -> bool:
    """Bitwise equality across every FleetTimeline array."""
    return (
        np.array_equal(a.hours, b.hours)
        and np.array_equal(a.violations, b.violations)
        and np.array_equal(a.throttled, b.throttled)
        and np.array_equal(a.mode_counts, b.mode_counts)
        and np.array_equal(a.tail_ms_sum, b.tail_ms_sum)
        and np.array_equal(a.batch_uipc_sum, b.batch_uipc_sum)
        and np.array_equal(a.server_violations, b.server_violations)
        and np.array_equal(a.server_bmode_windows, b.server_bmode_windows)
    )


# ----------------------------------------------------------------------
# Feeds
# ----------------------------------------------------------------------


class TestCurveFeed:
    def test_named_curve_is_gapless(self):
        feed = CurveFeed("web_search")
        assert feed.name == "web_search"
        for k in range(12):
            assert feed.load(k, k * 2.0) is not None

    def test_flat_spec(self):
        feed = make_feed("flat:0.7")
        assert feed.load(3, 6.0) == pytest.approx(0.7)

    def test_callable(self):
        feed = make_feed(lambda hour: 0.1 * hour)
        assert feed.load(0, 4.0) == pytest.approx(0.4)

    def test_forecast_defaults_to_load(self):
        feed = make_feed("flat:0.5")
        assert feed.forecast(9, 18.0) == feed.load(9, 18.0)


class TestPhaseFeed:
    def test_parse_phases(self):
        phases = parse_phases(
            "flat@0.3x4,ramp@0.3-1.1x2,oscillate@0.5-0.9x6~30m"
        )
        assert [p.kind for p in phases] == ["flat", "ramp", "oscillate"]
        assert phases[1].to_level == pytest.approx(1.1)
        assert phases[2].period_minutes == pytest.approx(30.0)

    @pytest.mark.parametrize("bad", ["", "flat@x4", "warp@0.3x4", "ramp@0.5x2"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_phases(bad)

    def test_flat_and_ramp_values(self):
        feed = PhaseFeed("flat@0.4x2,ramp@0.4-0.8x4")
        assert feed.load(0, 1.0) == pytest.approx(0.4)
        assert feed.load(0, 4.0) == pytest.approx(0.6)  # ramp midpoint
        assert feed.load(0, 5.9) == pytest.approx(0.79, abs=0.01)

    def test_oscillation_bounded_by_levels(self):
        feed = PhaseFeed((Phase("oscillate", 6.0, 0.5, 0.9, 60.0),))
        values = [feed.load(0, h / 10) for h in range(60)]
        assert min(values) >= 0.5 - 1e-9
        assert max(values) <= 0.9 + 1e-9

    def test_phases_cycle(self):
        feed = PhaseFeed("flat@0.3x1,flat@0.7x1")
        assert feed.load(0, 0.5) == pytest.approx(0.3)
        assert feed.load(0, 1.5) == pytest.approx(0.7)
        assert feed.load(0, 2.5) == pytest.approx(0.3)  # wrapped

    def test_jitter_is_deterministic_per_window(self):
        a = PhaseFeed("flat@0.5x24", seed=3, jitter=0.2)
        b = PhaseFeed("flat@0.5x24", seed=3, jitter=0.2)
        assert a.load(7, 14.0) == b.load(7, 14.0)
        assert a.load(7, 14.0) != a.load(8, 16.0)


class TestReplayFeed:
    def write_stream(self, path, records):
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_replays_recorded_windows(self, tmp_path):
        path = self.write_stream(tmp_path / "s.jsonl", [
            {"window": 0, "hour": 0.0, "cluster_load": 0.3},
            {"window": 1, "hour": 2.0, "cluster_load": 0.8},
        ])
        feed = ReplayFeed.from_jsonl(path, window_minutes=120.0)
        assert feed.n_records == 2
        assert feed.load(0, 0.0) == pytest.approx(0.3)
        assert feed.load(1, 2.0) == pytest.approx(0.8)
        assert feed.load(2, 4.0) is None  # gap

    def test_foreign_and_torn_lines_are_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            '{"window": 0, "load": 0.4}\n'
            "not json\n"
            '{"type": "checkpoint", "key": "abc"}\n'
            '{"hour": 2.0, "load_fraction": 0.6}\n'
        )
        feed = ReplayFeed.from_jsonl(path, window_minutes=120.0)
        assert feed.n_records == 2
        assert feed.load(1, 2.0) == pytest.approx(0.6)

    def test_empty_stream_rejected(self, tmp_path):
        path = self.write_stream(tmp_path / "s.jsonl", [{"type": "summary"}])
        with pytest.raises(ValueError, match="no usable records"):
            ReplayFeed.from_jsonl(path)

    def test_curve_holds_last_across_gaps(self, tmp_path):
        path = self.write_stream(tmp_path / "s.jsonl", [
            {"window": 0, "cluster_load": 0.3},
            {"window": 4, "cluster_load": 0.9},
        ])
        curve = replay_curve(path, window_minutes=60.0)
        assert curve(0.0) == pytest.approx(0.3)
        assert curve(2.5) == pytest.approx(0.3)  # held across the gap
        assert curve(4.0) == pytest.approx(0.9)
        assert curve(23.0) == pytest.approx(0.9)

    def test_registered_as_load_curve(self, tmp_path):
        """`replay:<path>` works anywhere a named curve does."""
        path = self.write_stream(tmp_path / "s.jsonl", [
            {"window": 0, "cluster_load": 0.25},
        ])
        name, fn = resolve_load_curve(f"replay:{path}")
        assert name == f"replay:{path}"
        assert fn(12.0) == pytest.approx(0.25)

    def test_make_feed_dispatch(self, tmp_path):
        path = self.write_stream(tmp_path / "s.jsonl", [
            {"window": 0, "cluster_load": 0.5},
        ])
        assert isinstance(make_feed(f"replay:{path}"), ReplayFeed)
        assert isinstance(make_feed("phases:flat@0.4x24"), PhaseFeed)
        assert isinstance(make_feed("web_search"), CurveFeed)
        feed = PhaseFeed("flat@0.5x24")
        assert make_feed(feed) is feed


# ----------------------------------------------------------------------
# Service loop
# ----------------------------------------------------------------------


class TestServiceLoop:
    def test_advance_matches_run_day(self, surrogate):
        """The served day is bit-identical to the batch `run_day` path."""
        service = make_service(surrogate)
        while not service.done:
            service.advance(5)
        batch = make_engine(surrogate).run_day("web_search")
        assert timelines_equal(service.timeline, batch)

    def test_advance_emits_window_records(self, surrogate):
        service = make_service(surrogate)
        records = service.advance(3)
        assert [r["window"] for r in records] == [0, 1, 2]
        for record in records:
            assert record["servers"] == 8
            assert not record["gap_filled"]

    def test_streaming_outputs(self, surrogate, tmp_path):
        sink = JsonlSink(tmp_path / "out.jsonl")
        service = make_service(
            surrogate,
            registry=MetricsRegistry(),
            sink=sink,
            tracer=SpanTracer(),
        )
        service.advance(4)
        lines = [
            json.loads(line)
            for line in (tmp_path / "out.jsonl").read_text().splitlines()
        ]
        assert [r["window"] for r in lines] == [0, 1, 2, 3]
        assert all(r["type"] == "fleet_window" for r in lines)
        assert service.registry.counter("fleet.windows").value == 4 * 8
        assert len(service.registry.series("fleet.cluster_load").points) == 4
        assert {"service.ingest", "service.advance", "service.publish"} <= (
            service.tracer.span_names()
        )

    def test_run_summary(self, surrogate):
        service = make_service(surrogate)
        summary = service.run(n_windows=3)
        assert summary["type"] == "summary"
        assert summary["served_windows"] == 3
        assert summary["window"] == 3
        assert not summary["done"]

    def test_run_streams_window_records_to_out(self, surrogate):
        out = io.StringIO()
        service = make_service(surrogate)
        service.run(n_windows=3, out=out)
        records = [json.loads(line) for line in out.getvalue().splitlines()]
        windows = [r for r in records if r.get("type") == "fleet_window"]
        assert [r["window"] for r in windows] == [0, 1, 2]
        # The stdout stream doubles as a recordable replay feed.
        feed = ReplayFeed(
            {r["window"]: r["cluster_load"] for r in windows}
        )
        assert feed.load(1, 0.0) == windows[1]["cluster_load"]


class TestFeedGaps:
    class GappyFeed(LoadFeed):
        name = "gappy"

        def __init__(self, gaps):
            self.gaps = gaps

        def load(self, window, hour):
            return None if window in self.gaps else 0.5

    def test_gap_holds_last_window(self, surrogate):
        service = make_service(surrogate, feed=self.GappyFeed({1}))
        records = service.advance(3)
        assert [r["gap_filled"] for r in records] == [False, True, False]
        assert records[1]["cluster_load"] == pytest.approx(0.5)
        assert service.feed_gaps == 1

    def test_leading_gap_defaults_to_zero_load(self, surrogate):
        service = make_service(surrogate, feed=self.GappyFeed({0}))
        record = service.advance(1)[0]
        assert record["gap_filled"]
        assert record["cluster_load"] == 0.0

    def test_stall_stops_cleanly(self, surrogate):
        feed = self.GappyFeed(set(range(2, 1000)))
        service = make_service(surrogate, feed=feed, max_gap_windows=3)
        summary = service.run()
        assert summary["stopped"]
        assert summary["stop_reason"] == "feed_stalled"
        # 2 real windows + 3 tolerated hold-last fills, then a clean stop.
        assert summary["window"] == 5
        assert service.feed_gaps == 4

    def test_gap_burst_within_budget_recovers(self, surrogate):
        service = make_service(
            surrogate, feed=self.GappyFeed({1, 2}), max_gap_windows=3
        )
        records = service.advance(5)
        assert len(records) == 5
        assert not service.stopped


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_killed_and_resumed_is_bit_identical(self, surrogate, tmp_path):
        store = ResultStore(tmp_path)
        uninterrupted = make_service(surrogate)
        uninterrupted.run()

        service = make_service(surrogate, store=store)
        service.advance(5)
        key = service.checkpoint()["key"]
        del service  # the kill

        resumed = FleetService.resume(
            key, make_engine(surrogate), "web_search", store=store
        )
        assert resumed.window == 5
        resumed.run()
        assert resumed.done
        assert timelines_equal(resumed.timeline, uninterrupted.timeline)

    def test_resume_restores_monitor_arrays(self, surrogate, tmp_path):
        store = ResultStore(tmp_path)
        service = make_service(surrogate, store=store)
        service.advance(7)
        key = service.checkpoint()["key"]
        state = service.state
        resumed = load_checkpoint(store, key)
        assert np.array_equal(resumed.mode, state.mode)
        assert np.array_equal(resumed.compliant, state.compliant)
        assert np.array_equal(resumed.violation, state.violation)
        assert np.array_equal(resumed.throttle, state.throttle)

    def test_checkpoint_key_changes_with_state(self, surrogate, tmp_path):
        store = ResultStore(tmp_path)
        service = make_service(surrogate, store=store)
        service.advance(1)
        first = service.checkpoint()["key"]
        service.advance(1)
        second = service.checkpoint()["key"]
        assert first != second

    def test_same_state_same_key(self, surrogate, tmp_path):
        store = ResultStore(tmp_path)
        a = make_service(surrogate, store=store)
        b = make_service(surrogate, store=store)
        a.advance(2), b.advance(2)
        assert a.checkpoint()["key"] == b.checkpoint()["key"]

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no checkpoint"):
            load_checkpoint(ResultStore(tmp_path), "deadbeef")

    def test_save_checkpoint_roundtrip(self, surrogate, tmp_path):
        store = ResultStore(tmp_path)
        service = make_service(surrogate)
        service.advance(3)
        key = save_checkpoint(store, "identity", service.state)
        restored = load_checkpoint(store, key)
        assert restored.window == 3
        assert timelines_equal(restored.timeline, service.timeline)


# ----------------------------------------------------------------------
# What-if queries
# ----------------------------------------------------------------------


class TestWhatIf:
    def test_live_state_is_not_perturbed(self, surrogate):
        service = make_service(surrogate)
        service.advance(4)
        state = service.state
        before = {
            "window": state.window,
            "mode": state.mode.copy(),
            "compliant": state.compliant.copy(),
            "violation": state.violation.copy(),
            "throttle": state.throttle.copy(),
            "timeline": state.timeline.copy(),
        }
        service.whatif(monitor=MonitorConfig(engage_fraction=0.9), horizon=6)
        assert state.window == before["window"]
        for field in ("mode", "compliant", "violation", "throttle"):
            assert np.array_equal(getattr(state, field), before[field])
        assert timelines_equal(state.timeline, before["timeline"])

    def test_query_does_not_change_future_windows(self, surrogate):
        plain = make_service(surrogate)
        queried = make_service(surrogate)
        plain.advance(3), queried.advance(3)
        queried.whatif(policy="uniform", horizon=8)
        plain.run(), queried.run()
        assert timelines_equal(plain.timeline, queried.timeline)

    def test_diff_structure(self, surrogate):
        service = make_service(surrogate)
        service.advance(2)
        result = service.whatif(policy="uniform", horizon=5)
        assert result["window"] == 2
        assert result["horizon"] == 5
        assert result["policy"] == "uniform"
        for key in ("violation_rate", "bmode_fraction", "mean_tail_ms"):
            assert result["diff"][key] == pytest.approx(
                result["whatif"][key] - result["live"][key]
            )

    def test_horizon_clamped_to_remaining(self, surrogate):
        service = make_service(surrogate)
        n = service.state.n_windows
        service.advance(n - 2)
        result = service.whatif(policy="uniform", horizon=50)
        assert result["horizon"] == 2

    def test_requires_a_change(self, surrogate):
        service = make_service(surrogate)
        with pytest.raises(ValueError, match="monitor, policy, placement, and/or scenario"):
            service.whatif()

    def test_whatif_after_done_raises(self, surrogate):
        service = make_service(surrogate)
        service.run()
        with pytest.raises(ValueError, match="no windows remaining"):
            service.whatif(policy="uniform")


class TestReconfigure:
    def test_swaps_policy_keeping_state(self, surrogate):
        service = make_service(surrogate)
        service.advance(3)
        timeline_rows = service.timeline.violations[:3].copy()
        result = service.reconfigure(policy="uniform")
        assert result["policy"] == "uniform"
        assert service.window == 3
        assert np.array_equal(service.timeline.violations[:3], timeline_rows)
        service.advance(1)
        assert service.window == 4

    def test_noop_rejected(self, surrogate):
        service = make_service(surrogate)
        with pytest.raises(ValueError):
            service.reconfigure()


# ----------------------------------------------------------------------
# Control plane
# ----------------------------------------------------------------------


class TestControlPlane:
    def test_status_command(self, surrogate):
        service = make_service(surrogate)
        service.advance(2)
        response = handle_command(service, {"cmd": "status", "id": 7})
        assert response["ok"]
        assert response["id"] == 7
        assert response["result"]["window"] == 2
        assert response["result"]["metrics"]["windows"] == 16

    def test_whatif_command_with_monitor_overrides(self, surrogate):
        service = make_service(surrogate)
        service.advance(1)
        response = handle_command(service, {
            "cmd": "whatif",
            "monitor": {"engage_fraction": 0.8},
            "horizon": 3,
        })
        assert response["ok"]
        assert response["result"]["monitor"]["engage_fraction"] == 0.8
        # untouched fields keep the live config's values
        assert response["result"]["monitor"]["throttle_windows"] == (
            service.engine.config.monitor.throttle_windows
        )

    def test_checkpoint_and_stop_commands(self, surrogate, tmp_path):
        service = make_service(surrogate, store=ResultStore(tmp_path))
        service.advance(1)
        response = handle_command(service, {"cmd": "checkpoint"})
        assert response["ok"] and response["result"]["key"]
        response = handle_command(service, {"cmd": "stop"})
        assert response["ok"]
        assert service.stopped and service.stop_reason == "control"

    def test_reconfigure_command(self, surrogate):
        service = make_service(surrogate)
        response = handle_command(service, {
            "cmd": "reconfigure", "monitor": {"throttle_windows": 4},
        })
        assert response["ok"]
        assert service.engine.config.monitor.throttle_windows == 4

    @pytest.mark.parametrize("request_", [
        {"cmd": "warp"},
        {"cmd": "whatif", "monitor": {"not_a_field": 1}},
        {"cmd": "whatif"},
        {"_error": "bad control line"},
        "not a dict",
    ])
    def test_errors_never_raise(self, surrogate, request_):
        service = make_service(surrogate)
        response = handle_command(service, request_)
        assert not response["ok"]
        assert "error" in response

    def test_drain_parses_ldjson(self, surrogate):
        stream = io.StringIO(
            '{"cmd": "status"}\n\nnot json\n{"cmd": "stop"}\n'
        )
        plane = ControlPlane(stream)
        plane._thread.join(timeout=5.0)
        requests = plane.drain()
        assert len(requests) == 3
        assert requests[0] == {"cmd": "status"}
        assert "_error" in requests[1]
        assert requests[2] == {"cmd": "stop"}
        assert plane.drain() == []

    def test_run_answers_control_and_stops(self, surrogate):
        stream = io.StringIO('{"cmd": "status"}\n{"cmd": "stop"}\n')
        plane = ControlPlane(stream)
        plane._thread.join(timeout=5.0)
        out = io.StringIO()
        service = make_service(surrogate)
        summary = service.run(control=plane, out=out)
        assert summary["stopped"]
        assert summary["stop_reason"] == "control"
        responses = [json.loads(l) for l in out.getvalue().splitlines()]
        assert [r["cmd"] for r in responses] == ["status", "stop"]
        assert all(r["ok"] for r in responses)

    def test_command_surface_is_documented(self):
        assert COMMANDS == (
            "status", "whatif", "checkpoint", "reconfigure", "dump", "stop"
        )


# ----------------------------------------------------------------------
# The api facade
# ----------------------------------------------------------------------


class TestServeFacade:
    def test_serve_builds_a_service(self, surrogate):
        from repro.api import serve

        service = serve(
            "web_search",
            performance=performance_model(),
            feed="flat:0.5",
            n_servers=8,
            window_minutes=120.0,
            requests_per_window=TEST_RPW,
            seed=5,
            surrogate=surrogate,
        )
        assert isinstance(service, FleetService)
        records = service.advance(2)
        assert records[0]["cluster_load"] == pytest.approx(0.5)

    def test_serve_resume_roundtrip(self, surrogate, tmp_path):
        from repro.api import serve

        store = ResultStore(tmp_path)
        kwargs = dict(
            performance=performance_model(),
            feed="web_search",
            n_servers=8,
            window_minutes=120.0,
            requests_per_window=TEST_RPW,
            seed=5,
            surrogate=surrogate,
            store=store,
        )
        service = serve("web_search", **kwargs)
        service.advance(4)
        key = service.checkpoint()["key"]
        resumed = serve("web_search", resume=key, **kwargs)
        assert resumed.window == 4
        service.run(), resumed.run()
        assert timelines_equal(service.timeline, resumed.timeline)

    def test_serve_requires_performance_or_batch(self):
        from repro.api import serve

        with pytest.raises(ValueError, match="performance model or a batch"):
            serve("web_search")
