"""Tests for the shared experiment infrastructure."""

import pytest

from repro.cpu.config import PartitionPolicy
from repro.experiments import common
from repro.experiments.common import (
    Fidelity,
    config_all_private,
    config_all_shared,
    config_dynamic_rob,
    config_fetch_throttle,
    config_share_only,
    config_solo,
    fidelity_from_env,
    fidelity_names,
    pair_uipc,
    register_fidelity,
    solo_uipc,
)


class TestFidelity:
    def test_quick_smaller_than_full(self):
        q, f = Fidelity.quick(), Fidelity.full()
        assert q.sampling.n_samples <= f.sampling.n_samples
        assert q.sampling.measure_instructions < f.sampling.measure_instructions

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        assert Fidelity.from_env().name == "quick"

    def test_env_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "full")
        assert Fidelity.from_env().name == "full"

    def test_env_surrogate(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "surrogate")
        fid = Fidelity.from_env()
        assert fid.name == "surrogate" and fid.is_surrogate
        # Surrogate calibration runs with quick-tier sampling seeds.
        assert fid.sampling == Fidelity.quick().sampling

    def test_env_invalid_lists_registered_tiers(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "ultra")
        with pytest.raises(ValueError) as excinfo:
            Fidelity.from_env()
        for name in fidelity_names():
            assert name in str(excinfo.value)

    def test_env_threads_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "full")
        assert Fidelity.from_env(seed=7).sampling.seed == 7
        monkeypatch.delenv("REPRO_FIDELITY")
        assert Fidelity.from_env(seed=9).sampling.seed == 9

    def test_resolve_name_and_instance(self):
        assert Fidelity.resolve("FULL").name == "full"
        fid = Fidelity.quick(seed=3)
        assert Fidelity.resolve(fid) is fid

    def test_resolve_overrides(self):
        fid = Fidelity.resolve("quick", seed=5, n_samples=9)
        assert fid.sampling.seed == 5 and fid.sampling.n_samples == 9
        fid = Fidelity.resolve(Fidelity.full(), seed=8)
        assert fid.name == "full" and fid.sampling.seed == 8

    def test_resolve_unknown_lists_registered_tiers(self):
        with pytest.raises(ValueError, match="fidelity") as excinfo:
            Fidelity.resolve("ultra")
        for name in fidelity_names():
            assert name in str(excinfo.value)

    def test_resolve_rejects_non_string(self):
        with pytest.raises(TypeError):
            Fidelity.resolve(42)

    def test_register_custom_tier(self, monkeypatch):
        monkeypatch.setitem(common._REGISTRY, "debug",
                            lambda seed: Fidelity.quick(seed))
        assert "debug" in fidelity_names()
        assert Fidelity.resolve("debug", 7).sampling.seed == 7
        with pytest.raises(ValueError):
            register_fidelity("debug", Fidelity.quick)

    def test_builtin_tiers_registered(self):
        assert set(fidelity_names()) >= {"quick", "full", "surrogate"}

    def test_from_env_shim_warns(self, monkeypatch):
        monkeypatch.delenv("REPRO_FIDELITY", raising=False)
        with pytest.warns(DeprecationWarning):
            assert fidelity_from_env().name == "quick"


class TestConfigConstructors:
    def test_all_shared_is_default(self):
        config = config_all_shared()
        assert config.rob_limits == (96, 96)
        assert not config.private_l1i and not config.private_l1d

    def test_solo(self):
        assert config_solo().rob_limits[0] == 192
        assert config_solo(48).rob_limits[0] == 48

    def test_share_only_rob(self):
        config = config_share_only("rob")
        assert config.rob_limits == (96, 96)
        assert config.private_l1i and config.private_l1d and config.private_bp

    def test_share_only_l1i(self):
        config = config_share_only("l1i")
        assert not config.private_l1i
        assert config.private_l1d and config.private_bp
        # Everything else private & full-size: per-thread full ROB.
        assert config.rob_limits == (192, 192)

    def test_share_only_l1d(self):
        config = config_share_only("l1d")
        assert not config.private_l1d and config.private_l1i

    def test_share_only_bp(self):
        config = config_share_only("bp")
        assert not config.private_bp and config.private_l1i

    def test_share_only_unknown(self):
        with pytest.raises(ValueError):
            config_share_only("alus")

    def test_all_private_keeps_equal_rob(self):
        config = config_all_private()
        assert config.rob_limits == (96, 96)
        assert config.private_l1i and config.private_l1d and config.private_bp

    def test_dynamic_rob(self):
        assert config_dynamic_rob().rob_policy is PartitionPolicy.SHARED

    def test_fetch_throttle(self):
        config = config_fetch_throttle(8)
        assert config.fetch_policy == "ratio"
        assert config.fetch_ratio == (1, 8)
        with pytest.raises(ValueError):
            config_fetch_throttle(0)


class TestMemoization:
    """The memoized entry points delegate to the engine's result store."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.engine.store import reset_default_stores

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        reset_default_stores()
        yield
        reset_default_stores()

    def _sampling(self):
        from repro.cpu.sampling import SamplingConfig

        return SamplingConfig(n_samples=1, warmup_instructions=500,
                              measure_instructions=500, seed=2)

    def test_solo_memoized(self, monkeypatch):
        import repro.engine.job as engine_job

        calls = {"n": 0}
        original = engine_job.sample_solo

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(engine_job, "sample_solo", counting)
        sampling = self._sampling()
        first = solo_uipc("gamess", config_solo(), sampling)
        second = solo_uipc("gamess", config_solo(), sampling)
        assert first == second
        assert calls["n"] == 1

    def test_disk_cache_survives_memory_flush(self, monkeypatch):
        import repro.engine.job as engine_job
        from repro.engine.store import default_store

        sampling = self._sampling()
        value = pair_uipc("web_search", "gamess", config_all_shared(), sampling)
        default_store().clear_memory()
        calls = {"n": 0}
        original = engine_job.sample_colocation

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        monkeypatch.setattr(engine_job, "sample_colocation", counting)
        assert pair_uipc("web_search", "gamess", config_all_shared(), sampling) == value
        assert calls["n"] == 0

    def test_no_cache_env(self, monkeypatch):
        from repro.engine.store import default_store

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        store = default_store()
        assert store.directory is None and store.entry_dir is None

    def test_distinct_configs_distinct_keys(self):
        from repro.engine.job import job_key

        sampling = self._sampling()
        a = job_key("solo", ("gamess",), config_solo(), sampling)
        b = job_key("solo", ("gamess",), config_solo(96), sampling)
        assert a != b

    def test_key_depends_on_profile_definition(self, monkeypatch):
        from dataclasses import replace

        import repro.engine.job as engine_job
        import repro.workloads.registry as registry
        from repro.engine.job import job_key

        sampling = self._sampling()
        before = job_key("solo", ("gamess",), config_solo(), sampling)
        tweaked = replace(registry.get_profile("gamess"), cold_miss_frac=0.09)
        monkeypatch.setattr(engine_job, "get_profile", lambda name: tweaked)
        after = job_key("solo", ("gamess",), config_solo(), sampling)
        assert before != after

    def test_key_depends_on_cache_version(self):
        from repro.engine.job import job_key

        sampling = self._sampling()
        a = job_key("solo", ("gamess",), config_solo(), sampling, version=10)
        b = job_key("solo", ("gamess",), config_solo(), sampling, version=11)
        assert a != b
