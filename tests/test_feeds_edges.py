"""Edge cases for the service load feeds (`repro.service.feeds`).

Hostile-input coverage riding along with the scenario suite: malformed
phase specs, empty or garbage replay files, a gap at the very first
window (nothing to hold yet), and the record-then-replay loop closed
*through* the scenario layer — a scenario-attached fleet day replayed
from its own recorded load stream is bit-identical to the original.
"""

import json

import numpy as np
import pytest

from repro.fleet import FleetEngine
from repro.scenarios import Incident, ScenarioSpec
from repro.service import FleetService
from repro.service.feeds import (
    PhaseFeed,
    ReplayFeed,
    make_feed,
    parse_phases,
    replay_curve,
)
from repro.workloads.registry import get_profile
from tests.test_scenarios import (
    assert_timelines_identical,
    fleet_config,
    make_engine,
    performance_model,
    surrogate,  # noqa: F401  (module fixture)
)


class TestPhaseSpecParsing:
    @pytest.mark.parametrize("spec", [
        "",                      # empty spec
        "flat0.4x6",             # missing the @
        "flat@x6",               # missing the level
        "flat@0.4",              # missing the duration
        "flat@0.4x6,",           # trailing empty segment
        "ramp@0.3--1.1x2",       # negative target never parses
    ])
    def test_malformed_specs_raise_with_the_bad_segment(self, spec):
        with pytest.raises(ValueError, match="bad phase segment|empty"):
            parse_phases(spec)

    def test_well_formed_but_invalid_phases_raise(self):
        # The grammar accepts these; Phase validation rejects them.
        with pytest.raises(ValueError, match="kind must be"):
            parse_phases("spike@0.5x2")
        with pytest.raises(ValueError, match="needs a target"):
            parse_phases("ramp@0.3x2")
        with pytest.raises(ValueError, match="duration must be positive"):
            parse_phases("flat@0.4x0")

    def test_phase_feed_rejects_bad_jitter_and_empty_phases(self):
        with pytest.raises(ValueError, match="jitter"):
            PhaseFeed("flat@0.4x6", jitter=1.0)
        with pytest.raises(ValueError, match="at least one phase"):
            PhaseFeed(())

    def test_jittered_phase_feed_is_stateless(self):
        a = PhaseFeed("flat@0.5x6", seed=3, jitter=0.2)
        b = PhaseFeed("flat@0.5x6", seed=3, jitter=0.2)
        # Same (seed, window) -> same draw, in any query order.
        loads = [a.load(k, 0.5) for k in range(8)]
        assert [b.load(k, 0.5) for k in reversed(range(8))] == loads[::-1]


class TestReplayEdges:
    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no usable records"):
            ReplayFeed.from_jsonl(path)

    def test_garbage_only_file_raises(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text(
            "not json\n"
            "[1, 2, 3]\n"                       # JSON but not an object
            '{"window": 4}\n'                   # object but no load key
            '{"cluster_load": 0.5}\n'           # load but no window/hour
        )
        with pytest.raises(ValueError, match="no usable records"):
            ReplayFeed.from_jsonl(path)

    def test_torn_lines_are_tolerated_around_good_records(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"window": 0, "cluster_load": 0.4}\n'
            '{"window": 1, "cluster_load": 0.\n'  # torn mid-write
            '{"window": 2, "cluster_load": 0.6}\n'
        )
        feed = ReplayFeed.from_jsonl(path)
        assert feed.n_records == 2
        assert feed.load(0, 0.0) == 0.4
        assert feed.load(1, 0.0) is None  # the torn window is a gap
        assert feed.load(2, 0.0) == 0.6

    def test_gap_at_window_zero(self, tmp_path, surrogate):  # noqa: F811
        path = tmp_path / "late.jsonl"
        path.write_text('{"window": 3, "cluster_load": 0.7}\n')
        feed = ReplayFeed.from_jsonl(path)
        assert feed.load(0, 0.0) is None
        # The service holds the last ingested load across gaps; before
        # any ingest there is nothing to hold, so window 0 serves 0.0.
        service = FleetService(make_engine(surrogate), feed)
        load, gap_filled = service.ingest(0)
        assert gap_filled and load == 0.0
        # The curve view instead back-fills from the first record (a
        # retrospective step function, not a live stream).
        assert replay_curve(path)(0.0) == 0.7


class TestReplayThroughScenarios:
    def test_replayed_incident_day_is_bit_identical(
        self, tmp_path, surrogate,  # noqa: F811
    ):
        scenario = ScenarioSpec(
            name="replayed-incident",
            incident=Incident(start_hour=4.0, duration_hours=8.0,
                              fraction=0.5, capacity_loss=0.5),
        )
        engine = make_engine(surrogate, scenario=scenario)
        stepper = engine.stepper("web_search")
        records = []
        while not stepper.state.done:
            records.append(stepper.step())
        original = stepper.state.timeline
        assert any("incident" in rec["scenario"]["active"]
                   for rec in records)

        # Record the ingested load stream, then replay it as the load
        # feed of a fresh scenario-attached run: the scenario multiplies
        # per-server loads *after* balancing, so the recorded
        # cluster_load stream is scenario-free and the loop closes
        # bit-identically.
        path = tmp_path / "incident_day.jsonl"
        path.write_text("".join(
            json.dumps({
                "window": rec["window"], "cluster_load": rec["cluster_load"],
            }) + "\n"
            for rec in records
        ))
        window_minutes = engine.config.window_minutes
        feed = ReplayFeed.from_jsonl(path, window_minutes=window_minutes)
        assert feed.n_records == len(records)
        replayed = make_engine(surrogate, scenario=scenario).run_day(
            feed.curve()
        )
        assert_timelines_identical(original, replayed)

    def test_make_feed_replay_spec(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"window": 0, "cluster_load": 0.5}\n')
        feed = make_feed(f"replay:{path}")
        assert isinstance(feed, ReplayFeed)
        assert feed.load(0, 0.0) == 0.5
