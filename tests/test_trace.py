"""Tests for the trace representation and cursor."""

import numpy as np
import pytest

from repro.cpu.isa import OpClass
from repro.cpu.trace import Trace, TraceCursor


def make_trace(n=8, **overrides) -> Trace:
    columns = dict(
        name="t",
        op=np.full(n, OpClass.INT_ALU, dtype=np.uint8),
        dep1=np.zeros(n, dtype=np.int64),
        dep2=np.zeros(n, dtype=np.int64),
        pc=np.arange(n, dtype=np.int64) * 4,
        addr=np.zeros(n, dtype=np.int64),
        taken=np.zeros(n, dtype=bool),
        target=np.zeros(n, dtype=np.int64),
        sid=np.zeros(n, dtype=np.int64),
    )
    columns.update(overrides)
    return Trace(**columns)


class TestTrace:
    def test_len(self):
        assert len(make_trace(5)) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_trace(0)

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError, match="dep1"):
            make_trace(4, dep1=np.zeros(3, dtype=np.int64))

    def test_mix_sums_to_one(self):
        trace = make_trace(10)
        assert sum(trace.mix.values()) == pytest.approx(1.0)

    def test_mix_counts(self):
        op = np.array([OpClass.LOAD, OpClass.LOAD, OpClass.STORE, OpClass.INT_ALU],
                      dtype=np.uint8)
        trace = make_trace(4, op=op,
                           addr=np.array([8, 16, 24, 0], dtype=np.int64))
        assert trace.mix[OpClass.LOAD] == pytest.approx(0.5)

    def test_validate_ok(self):
        make_trace(6).validate()

    def test_validate_dep_before_start(self):
        dep = np.zeros(4, dtype=np.int64)
        dep[0] = 1  # µop 0 cannot depend on µop -1
        with pytest.raises(ValueError, match="before the trace start"):
            make_trace(4, dep1=dep).validate()

    def test_validate_negative_dep(self):
        dep = np.zeros(4, dtype=np.int64)
        dep[2] = -1
        with pytest.raises(ValueError, match="non-negative"):
            make_trace(4, dep1=dep).validate()

    def test_validate_addr_on_non_mem(self):
        addr = np.zeros(4, dtype=np.int64)
        addr[1] = 64  # INT_ALU with an address
        with pytest.raises(ValueError, match="addr"):
            make_trace(4, addr=addr).validate()

    def test_validate_sid_on_non_mem(self):
        sid = np.zeros(4, dtype=np.int64)
        sid[1] = 2
        with pytest.raises(ValueError, match="sid"):
            make_trace(4, sid=sid).validate()

    def test_validate_bad_opclass(self):
        op = np.full(4, 17, dtype=np.uint8)
        with pytest.raises(ValueError, match="op class"):
            make_trace(4, op=op).validate()


class TestTraceCursor:
    def test_sequential_advance(self):
        cursor = TraceCursor(make_trace(4))
        assert [cursor.advance() for _ in range(4)] == [0, 1, 2, 3]

    def test_wraps_cyclically(self):
        cursor = TraceCursor(make_trace(3))
        indices = [cursor.advance() for _ in range(7)]
        assert indices == [0, 1, 2, 0, 1, 2, 0]
        assert cursor.consumed == 7

    def test_start_offset(self):
        cursor = TraceCursor(make_trace(4), start=2)
        assert cursor.advance() == 2

    def test_start_offset_wraps(self):
        cursor = TraceCursor(make_trace(4), start=6)
        assert cursor.peek() == 2

    def test_peek_does_not_consume(self):
        cursor = TraceCursor(make_trace(4))
        assert cursor.peek() == 0
        assert cursor.consumed == 0

    def test_columns_are_plain_lists(self):
        cursor = TraceCursor(make_trace(4))
        for name in ("op", "dep1", "dep2", "pc", "addr", "taken", "target", "sid"):
            assert isinstance(getattr(cursor, name), list)
