"""Tests for the queue-length monitor variant and queue-depth statistics."""

import pytest

from repro.core.monitor import QueueLengthMonitor, QueueLengthMonitorConfig
from repro.core.stretch import StretchMode
from repro.qos.queueing import ServiceSimulator
from repro.workloads.profiles import QoSSpec

QOS = QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=8.0)


class TestQueueDepthStats:
    def test_low_load_shallow_queue(self):
        service = ServiceSimulator(QOS, n_workers=8, seed=2)
        stats = service.run(0.02, n_requests=3000)
        assert stats.mean_queue_depth < 1.0

    def test_high_load_deep_queue(self):
        service = ServiceSimulator(QOS, n_workers=8, seed=2)
        low = service.run(0.05, n_requests=3000)
        high = service.run(0.9, n_requests=3000)
        assert high.mean_queue_depth > low.mean_queue_depth
        assert high.p95_queue_depth >= high.mean_queue_depth


class TestQueueLengthMonitorConfig:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            QueueLengthMonitorConfig(engage_max_depth=5.0, violate_depth=4.0)

    def test_negative_depth(self):
        with pytest.raises(ValueError):
            QueueLengthMonitorConfig(engage_max_depth=-1.0)


class TestQueueLengthMonitor:
    def make(self, **kwargs) -> QueueLengthMonitor:
        return QueueLengthMonitor(QueueLengthMonitorConfig(**kwargs))

    def test_calm_queue_engages_b_mode(self):
        m = self.make(engage_windows=2)
        m.observe_window(0.1)
        decision = m.observe_window(0.1)
        assert decision.mode is StretchMode.B_MODE

    def test_moderate_queue_stays_baseline(self):
        m = self.make(engage_windows=1, engage_max_depth=0.5, violate_depth=4.0)
        decision = m.observe_window(2.0)
        assert decision.mode is StretchMode.BASELINE

    def test_deep_queue_escalates_from_b_mode(self):
        m = self.make(engage_windows=1)
        m.observe_window(0.0)
        assert m.mode is StretchMode.B_MODE
        decision = m.observe_window(20.0)
        assert decision.mode is StretchMode.Q_MODE

    def test_deep_queue_without_q_mode(self):
        m = QueueLengthMonitor(QueueLengthMonitorConfig(engage_windows=1),
                               q_mode_available=False)
        m.observe_window(0.0)
        decision = m.observe_window(20.0)
        assert decision.mode is StretchMode.BASELINE

    def test_persistent_deep_queue_throttles(self):
        m = self.make(engage_windows=1, violation_windows_to_throttle=2,
                      throttle_windows=2)
        m.observe_window(0.0)       # engage B
        m.observe_window(20.0)      # deep: -> Q (streak 1)
        decision = m.observe_window(20.0)  # deep persists (streak 2)
        assert decision.throttle_corunner
        assert m.throttle_orders == 1

    def test_recovery_to_baseline_then_b(self):
        m = self.make(engage_windows=2)
        m.observe_window(20.0)      # deep -> Q
        decision = m.observe_window(6.0)  # moderate -> baseline
        assert decision.mode is StretchMode.BASELINE
        m.observe_window(0.1)
        decision = m.observe_window(0.1)
        assert decision.mode is StretchMode.B_MODE

    def test_counters(self):
        m = self.make()
        m.observe_window(20.0)
        m.observe_window(20.0)
        assert m.deep_queue_windows == 2
        assert m.windows_observed == 2

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            self.make().observe_window(-0.1)

    def test_agrees_with_latency_monitor_on_regimes(self):
        """Queue-length and latency monitors make the same call at the
        extremes of the load range (the paper's claim that queue length is a
        usable slack proxy)."""
        service = ServiceSimulator(QOS, n_workers=8, seed=2)
        peak = service.peak_load(n_requests=6000)
        m = self.make(engage_windows=1)
        low = service.run(peak * 0.2, n_requests=4000)
        decision_low = m.observe_window(low.mean_queue_depth)
        assert decision_low.mode is StretchMode.B_MODE
        high = service.run(peak * 1.3, n_requests=4000)
        decision_high = m.observe_window(high.mean_queue_depth)
        assert decision_high.mode is not StretchMode.B_MODE
