"""Property-based tests on the monitor state machines.

Whatever latency / queue-depth sequence arrives, the monitors must keep
their invariants: legal mode values, bounded throttling, consistent
counters, and no B-mode engagement without an observed-slack streak.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveStretchPolicy
from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.monitor import (
    MonitorConfig,
    QueueLengthMonitor,
    QueueLengthMonitorConfig,
    StretchMonitor,
)
from repro.core.partitioning import B_MODES
from repro.core.stretch import StretchMode
from repro.workloads.profiles import QoSSpec

QOS = QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=8.0)

latencies = st.lists(st.floats(0.0, 500.0), min_size=1, max_size=120)
depths = st.lists(st.floats(0.0, 60.0), min_size=1, max_size=120)


class TestLatencyMonitorProperties:
    @given(latencies)
    @settings(max_examples=80, deadline=None)
    def test_invariants_hold_for_any_sequence(self, seq):
        m = StretchMonitor(QOS, MonitorConfig())
        throttle_run = 0
        for latency in seq:
            decision = m.observe_window(latency)
            assert decision.mode in StretchMode
            if decision.throttle_corunner:
                throttle_run += 1
                assert throttle_run <= m.config.throttle_windows
            else:
                throttle_run = 0
        assert m.windows_observed == len(seq)
        assert m.violations == sum(latency > QOS.target_ms for latency in seq)

    @given(latencies)
    @settings(max_examples=60, deadline=None)
    def test_no_b_mode_without_slack_streak(self, seq):
        config = MonitorConfig(engage_windows=3)
        m = StretchMonitor(QOS, config)
        streak = 0
        for latency in seq:
            decision = m.observe_window(latency)
            if latency <= QOS.target_ms * config.engage_fraction:
                streak += 1
            else:
                streak = 0
            if decision.mode is StretchMode.B_MODE:
                assert streak >= config.engage_windows

    @given(st.lists(st.floats(150.0, 500.0), min_size=5, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_sustained_violations_never_engage_b(self, seq):
        m = StretchMonitor(QOS, MonitorConfig())
        for latency in seq:
            assert m.observe_window(latency).mode is not StretchMode.B_MODE

    @given(st.lists(st.floats(0.0, 30.0), min_size=5, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_sustained_slack_settles_in_b(self, seq):
        m = StretchMonitor(QOS, MonitorConfig(engage_windows=3))
        decision = None
        for latency in seq:
            decision = m.observe_window(latency)
        assert decision.mode is StretchMode.B_MODE
        assert m.throttle_orders == 0


class TestQueueMonitorProperties:
    @given(depths)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, seq):
        m = QueueLengthMonitor(QueueLengthMonitorConfig())
        for depth in seq:
            decision = m.observe_window(depth)
            assert decision.mode in StretchMode
        assert m.windows_observed == len(seq)


class TestAdaptivePolicyProperties:
    def make_policy(self):
        perf = ColocationPerformance(
            "ls", "batch", ls_solo_uipc=0.6,
            per_mode={
                StretchMode.BASELINE: ModePerformance(0.55, 0.5),
                StretchMode.B_MODE: ModePerformance(0.45, 0.6),
                StretchMode.Q_MODE: ModePerformance(0.58, 0.4),
            },
        )
        return AdaptiveStretchPolicy(QOS, perf, tuple(B_MODES))

    @given(st.floats(0.0, 500.0))
    @settings(max_examples=80, deadline=None)
    def test_decision_always_valid(self, latency):
        decision = self.make_policy().decide(latency)
        assert decision.mode in StretchMode
        assert 8 <= decision.scheme.ls_entries <= 96

    @given(st.floats(0.0, 99.9), st.floats(0.0, 99.9))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_slack(self, a, b):
        """Less observed latency never selects a shallower skew."""
        policy = self.make_policy()
        lo, hi = sorted((a, b))
        deep = policy.decide(lo).scheme
        shallow = policy.decide(hi).scheme
        assert deep.batch_entries >= shallow.batch_entries
