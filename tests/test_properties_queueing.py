"""Property-based tests for the queueing substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qos.queueing import ServiceSimulator
from repro.workloads.profiles import QoSSpec


def make_service(target=100.0, base=8.0, cv=1.0, workers=8):
    return ServiceSimulator(
        QoSSpec(target_ms=target, percentile=99.0, base_service_ms=base,
                service_cv=cv),
        n_workers=workers, seed=3,
    )


class TestQueueingProperties:
    @given(st.floats(0.01, 0.6), st.floats(0.01, 0.6))
    @settings(max_examples=20, deadline=None)
    def test_latency_monotone_in_rate(self, a, b):
        """Under common random numbers, sojourn time is monotone in rate."""
        service = make_service()
        lo, hi = sorted((a, b))
        stats_lo = service.run(lo, n_requests=1200)
        stats_hi = service.run(hi, n_requests=1200)
        assert stats_hi.p99 >= stats_lo.p99 - 1e-9
        assert stats_hi.mean >= stats_lo.mean - 1e-9

    @given(st.floats(0.1, 1.0), st.floats(0.1, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_latency_monotone_in_perf_factor(self, a, b):
        """Slower cores (smaller factor) never reduce sojourn times."""
        service = make_service()
        lo, hi = sorted((a, b))
        fast = service.run(0.1, perf_factor=hi, n_requests=1200)
        slow = service.run(0.1, perf_factor=lo, n_requests=1200)
        assert slow.p99 >= fast.p99 - 1e-9

    @given(st.floats(0.02, 0.8))
    @settings(max_examples=20, deadline=None)
    def test_sojourn_at_least_service(self, rate):
        """Mean sojourn can never be below the mean service time's scale."""
        service = make_service()
        stats = service.run(rate, n_requests=1200)
        assert stats.mean >= 8.0 * 0.5  # lognormal mean 8 ms, generous slack
        assert stats.p99 >= stats.p95 >= stats.p50

    @given(st.integers(1, 16))
    @settings(max_examples=10, deadline=None)
    def test_more_workers_never_hurt(self, extra):
        base = make_service(workers=2).run(0.15, n_requests=1200)
        bigger = make_service(workers=2 + extra).run(0.15, n_requests=1200)
        assert bigger.p99 <= base.p99 + 1e-9
