"""Tests for plain-text table rendering."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        text = format_table(["h"], [["v"]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]], float_fmt=".2f")
        assert "0.12" in text

    def test_percent_formatting(self):
        text = format_table(["v"], [[0.5]], float_fmt=".0%")
        assert "50%" in text

    def test_mixed_types(self):
        text = format_table(["a", "b"], [[1, 0.5], ["x", 0.25]], float_fmt=".1f")
        assert "0.5" in text and "x" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_columns_aligned(self):
        text = format_table(["col"], [["a"], ["bbbb"]])
        lines = text.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines padded to equal width
