"""Tests for the section profiler (repro.obs.profiler)."""

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.smt_core import SMTCore
from repro.obs.profiler import (
    PROFILE_ENV,
    Profiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
)
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile

#: Hot-loop sections the SMT core flushes after a profiled run.
SIM_SECTIONS = {
    "sim.wakeup_squash",
    "sim.commit",
    "sim.fetch_arbitration",
    "sim.dispatch",
    "sim.clock_advance",
}


class TestProfiler:
    def test_add_accumulates(self):
        p = Profiler()
        p.add("a", 0.5)
        p.add("a", 0.25, calls=3)
        assert p.seconds("a") == 0.75
        assert p.calls("a") == 4
        assert p.seconds("missing") == 0.0

    def test_section_context_manager(self):
        p = Profiler()
        with p.section("x"):
            pass
        assert p.calls("x") == 1
        assert p.seconds("x") > 0

    def test_merge(self):
        a, b = Profiler(), Profiler()
        a.add("s", 1.0)
        b.add("s", 2.0)
        b.add("t", 3.0)
        a.merge(b)
        assert a.seconds("s") == 3.0 and a.seconds("t") == 3.0

    def test_table_hottest_first(self):
        p = Profiler()
        p.add("cold", 0.1, calls=10)
        p.add("hot", 0.9, calls=10)
        table = p.self_time_table()
        assert table.index("hot") < table.index("cold")
        assert "share" in table

    def test_empty_table(self):
        assert "no sections" in Profiler().self_time_table()

    def test_as_dict_and_reset(self):
        p = Profiler()
        p.add("a", 1.0, calls=2)
        assert p.as_dict() == {"a": {"seconds": 1.0, "calls": 2}}
        p.reset()
        assert p.as_dict() == {}


class TestProcessWideProfiler:
    @pytest.fixture(autouse=True)
    def clean_state(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        disable_profiling()
        yield
        disable_profiling()

    def test_off_by_default(self):
        assert active_profiler() is None

    def test_enable_disable(self):
        import os

        profiler = enable_profiling()
        assert active_profiler() is profiler
        assert os.environ[PROFILE_ENV] == "1"
        disable_profiling()
        assert active_profiler() is None
        assert PROFILE_ENV not in os.environ

    def test_env_flag_creates_worker_side_profiler(self, monkeypatch):
        # A pool worker inherits only the environment variable.
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert active_profiler() is not None


class TestSimulatorProfile:
    def test_profiled_run_is_bit_identical_and_covers_hot_loops(self):
        ws = generate_trace(get_profile("web_search"), 20_000, seed=3)
        zm = generate_trace(get_profile("zeusmp"), 20_000, seed=3)
        baseline = SMTCore(CoreConfig(), (ws, zm)).run(4000)

        core = SMTCore(CoreConfig(), (ws, zm))
        core.profiler = profiler = Profiler()
        profiled = core.run(4000)

        assert profiled.cycles == baseline.cycles
        for base, obs in zip(baseline.threads, profiled.threads):
            assert obs.cycles == base.cycles
            assert obs.instructions == base.instructions
        assert SIM_SECTIONS <= set(profiler.as_dict())
        # Every section flushed once per simulated cycle.
        cycles_profiled = profiler.calls("sim.dispatch")
        assert cycles_profiled == profiler.calls("sim.commit")
        assert profiler.seconds("sim.dispatch") > 0
