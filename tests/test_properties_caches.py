"""Property-based tests for cache and MSHR invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.caches import MSHRFile, SetAssociativeCache

blocks = st.integers(min_value=0, max_value=4096)


class TestCacheProperties:
    @given(st.lists(blocks, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, accesses):
        cache = SetAssociativeCache(64 * 2 * 4, 64, 2)  # 2-way, 4 sets
        for block in accesses:
            cache.access(block)
        assert cache.occupancy() <= 2 * 4

    @given(st.lists(blocks, min_size=1, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = SetAssociativeCache(64 * 2 * 4, 64, 2)
        for block in accesses:
            cache.access(block)
        assert cache.hits + cache.misses == len(accesses)

    @given(st.lists(blocks, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_immediate_reaccess_always_hits(self, accesses):
        cache = SetAssociativeCache(64 * 4 * 8, 64, 4)
        for block in accesses:
            cache.access(block)
            assert cache.access(block) is True

    @given(st.lists(blocks, min_size=1, max_size=200), blocks)
    @settings(max_examples=60, deadline=None)
    def test_probe_agrees_with_access_hit(self, accesses, probe_block):
        cache = SetAssociativeCache(64 * 2 * 4, 64, 2)
        for block in accesses:
            cache.access(block)
        resident = cache.probe(probe_block)
        assert cache.access(probe_block) is resident

    @given(st.lists(blocks, min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_direct_mapped_most_recent_resident(self, accesses):
        cache = SetAssociativeCache(64 * 1 * 8, 64, 1)  # direct-mapped
        for block in accesses:
            cache.access(block)
        assert cache.probe(accesses[-1])


class TestMSHRProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1), st.integers(0, 30), st.integers(0, 500)
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fill_never_before_issue_plus_latency(self, requests):
        m = MSHRFile(10, 5)
        now = 0
        for thread, block, gap in requests:
            now += gap
            fill = m.acquire(thread, block, now, latency=100)
            assert fill >= now  # coalesced fills may complete sooner than +100

    @given(
        st.lists(st.tuples(st.integers(0, 1), st.integers(0, 8)), min_size=1,
                 max_size=40)
    )
    @settings(max_examples=60, deadline=None)
    def test_occupancy_bounded_by_quota(self, requests):
        m = MSHRFile(10, 5)
        for thread, block in requests:
            m.acquire(thread, block, now=0, latency=10**6)
            assert m.occupancy(thread, 0) <= 5
            assert m.total_occupancy(0) <= 10
