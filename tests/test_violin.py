"""Tests for plain-text violin rendering."""

import pytest

from repro.util.violin import render_violin, render_violin_row


class TestRenderViolin:
    def test_width(self):
        assert len(render_violin([1, 2, 3], width=20)) == 20

    def test_median_marker_present(self):
        assert "|" in render_violin([1, 2, 3, 4, 5])

    def test_concentration_shows_peak(self):
        line = render_violin([0.0] * 50 + [1.0], width=10)
        # Dense left edge, sparse right side.
        assert line[0] in "|@%#"
        assert line[5] == " "

    def test_explicit_bounds_clip(self):
        line = render_violin([0.5], width=10, lo=0.0, hi=1.0)
        assert "|" in line

    def test_degenerate_range(self):
        line = render_violin([2.0, 2.0], width=10)
        assert "|" in line

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_violin([])

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_violin([1.0], width=2)


class TestRenderViolinRow:
    def test_contains_label_and_stats(self):
        row = render_violin_row("batch", [0.1, 0.2, 0.3])
        assert row.startswith("batch")
        assert "med=+20.0%" in row
        assert "min=+10.0%" in row and "max=+30.0%" in row

    def test_custom_format(self):
        row = render_violin_row("x", [1.0, 2.0], value_fmt=".1f")
        assert "med=1.5" in row
