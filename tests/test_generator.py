"""Tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.cpu.isa import OpClass
from repro.workloads.generator import (
    CODE_BASE,
    DATA_BASE,
    MAX_DEP_DISTANCE,
    TraceGenerator,
    generate_trace,
)
from repro.workloads.registry import get_profile


@pytest.fixture(scope="module")
def ws_trace():
    return generate_trace(get_profile("web_search"), 20000, seed=3)


@pytest.fixture(scope="module")
def lbm_trace():
    return generate_trace(get_profile("lbm"), 20000, seed=3)


class TestBasics:
    def test_exact_length(self, ws_trace):
        assert len(ws_trace) == 20000

    def test_validates(self, ws_trace, lbm_trace):
        ws_trace.validate()
        lbm_trace.validate()

    def test_deterministic_per_seed(self):
        p = get_profile("mcf")
        a = generate_trace(p, 2000, seed=11)
        b = generate_trace(p, 2000, seed=11)
        assert np.array_equal(a.op, b.op)
        assert np.array_equal(a.addr, b.addr)
        assert np.array_equal(a.taken, b.taken)

    def test_seed_changes_trace(self):
        p = get_profile("mcf")
        a = generate_trace(p, 2000, seed=11)
        b = generate_trace(p, 2000, seed=12)
        assert not np.array_equal(a.addr, b.addr)

    def test_nonpositive_length_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(get_profile("mcf"), 0)


class TestInstructionMix:
    def test_branch_fraction_near_profile(self, ws_trace):
        p = get_profile("web_search")
        measured = np.mean(ws_trace.op == OpClass.BRANCH)
        assert measured == pytest.approx(p.frac_branch, rel=0.35)

    def test_load_fraction_near_profile(self, ws_trace):
        p = get_profile("web_search")
        measured = np.mean(ws_trace.op == OpClass.LOAD)
        assert measured == pytest.approx(p.frac_load, rel=0.25)

    def test_store_fraction_near_profile(self, lbm_trace):
        p = get_profile("lbm")
        measured = np.mean(lbm_trace.op == OpClass.STORE)
        assert measured == pytest.approx(p.frac_store, rel=0.25)


class TestControlFlow:
    def test_pcs_in_code_region(self, ws_trace):
        assert np.all(ws_trace.pc >= CODE_BASE)
        assert np.all(ws_trace.pc < DATA_BASE)

    def test_code_footprint_bounded_by_profile(self, ws_trace):
        p = get_profile("web_search")
        touched_bytes = len(np.unique(ws_trace.pc >> 6)) * 64
        assert touched_bytes <= p.instr_footprint_kb * 1024 * 1.25

    def test_branches_have_targets(self, ws_trace):
        is_br = ws_trace.op == OpClass.BRANCH
        assert np.all(ws_trace.target[is_br] >= CODE_BASE)

    def test_branch_targets_static_per_pc(self, ws_trace):
        """A branch PC always jumps to the same (BTB-learnable) target."""
        is_br = np.asarray(ws_trace.op == OpClass.BRANCH)
        pcs = ws_trace.pc[is_br]
        targets = ws_trace.target[is_br]
        mapping = {}
        for pc, tgt in zip(pcs.tolist(), targets.tolist()):
            assert mapping.setdefault(pc, tgt) == tgt

    def test_direction_bias_matches_predictability(self, ws_trace):
        """Per-branch majority direction frequency ~ branch_predictability."""
        p = get_profile("web_search")
        is_br = np.asarray(ws_trace.op == OpClass.BRANCH)
        pcs = ws_trace.pc[is_br]
        takens = ws_trace.taken[is_br]
        unique, inverse = np.unique(pcs, return_inverse=True)
        counts = np.bincount(inverse)
        votes = np.bincount(inverse, weights=takens.astype(float))
        hot = counts >= 20
        majority = np.maximum(votes[hot], counts[hot] - votes[hot]) / counts[hot]
        assert majority.mean() == pytest.approx(p.branch_predictability, abs=0.05)


class TestDataStream:
    def test_mem_addresses_in_data_region(self, ws_trace):
        is_mem = np.asarray(
            (ws_trace.op == OpClass.LOAD) | (ws_trace.op == OpClass.STORE)
        )
        assert np.all(ws_trace.addr[is_mem] >= DATA_BASE)

    def test_chase_chain_serialized(self):
        """Pointer-chase loads form one dependency chain."""
        p = get_profile("web_search")
        generator = TraceGenerator(p, seed=5)
        trace = generator.generate(20000)
        chase = generator._chase_positions
        chase = chase[chase < len(trace)]  # drop positions past truncation
        assert len(chase) > 5
        diffs = np.diff(chase)
        dep = trace.dep1[chase[1:]]
        expected = np.minimum(diffs, MAX_DEP_DISTANCE)
        assert np.array_equal(dep, expected)

    def test_stream_strides_constant(self, lbm_trace):
        for sid in range(1, get_profile("lbm").stream_count + 1):
            sel = np.flatnonzero(np.asarray(lbm_trace.sid) == sid)
            if len(sel) < 3:
                continue
            strides = np.diff(lbm_trace.addr[sel])
            # Constant 64B stride except at region wrap.
            assert np.mean(strides == 64) > 0.95

    def test_sid_zero_for_non_stream(self, ws_trace):
        p = get_profile("web_search")
        if p.streaming_frac == 0.0:
            assert np.all(ws_trace.sid == 0)

    def test_memory_map_regions_ordered(self):
        g = TraceGenerator(get_profile("zeusmp"), seed=1)
        mm = g.memory_map
        assert mm.hot_start < mm.hot_end <= mm.cold_start < mm.cold_end
        assert mm.cold_end == mm.stream_start

    def test_memory_map_classification(self):
        g = TraceGenerator(get_profile("zeusmp"), seed=1)
        mm = g.memory_map
        assert mm.region_of(mm.hot_start) == "hot"
        assert mm.region_of(mm.cold_start) == "cold"
        assert mm.region_of(mm.stream_start + 64) == "stream"


class TestDependencies:
    def test_dep_distances_clipped(self, ws_trace):
        assert int(ws_trace.dep1.max()) <= MAX_DEP_DISTANCE
        assert int(ws_trace.dep2.max()) <= MAX_DEP_DISTANCE

    def test_dep_distances_within_trace(self, ws_trace):
        idx = np.arange(len(ws_trace))
        assert np.all(ws_trace.dep1 <= idx)
        assert np.all(ws_trace.dep2 <= idx)

    def test_some_dependencies_exist(self, ws_trace):
        assert np.mean(ws_trace.dep1 > 0) > 0.5
