"""Guard rails on the calibrated profile population.

DESIGN.md's substitution argument rests on the *population* of profiles
carrying the right categorical signatures.  These tests pin those category
properties so a future recalibration cannot silently invert them.
"""

from repro.workloads.cloudsuite import CLOUDSUITE
from repro.workloads.spec2006 import SPEC2006

#: The paper's high-ROB-sensitivity batch group (Fig. 4: >15% ROB loss).
MEMORY_GROUP = {
    "zeusmp", "lbm", "libquantum", "milc", "leslie3d", "GemsFDTD", "bwaves",
    "soplex", "sphinx3", "mcf", "omnetpp", "cactusADM", "wrf", "gcc",
    "xalancbmk",
}

#: Compute-bound benchmarks with minimal window appetite.
COMPUTE_GROUP = {"gamess", "povray", "namd", "calculix", "tonto"}


class TestBatchCategories:
    def test_groups_cover_known_names(self):
        assert MEMORY_GROUP <= set(SPEC2006)
        assert COMPUTE_GROUP <= set(SPEC2006)
        assert not MEMORY_GROUP & COMPUTE_GROUP

    def test_memory_group_has_dense_independent_misses(self):
        for name in MEMORY_GROUP:
            profile = SPEC2006[name]
            assert profile.cold_miss_frac >= 0.03, name

    def test_compute_group_has_sparse_misses(self):
        for name in COMPUTE_GROUP:
            profile = SPEC2006[name]
            assert profile.cold_miss_frac <= 0.015, name
            assert profile.data_footprint_kb <= 4 * 1024, name

    def test_memory_group_outweighs_compute_group(self):
        memory_avg = sum(SPEC2006[n].cold_miss_frac for n in MEMORY_GROUP) / len(
            MEMORY_GROUP
        )
        compute_avg = sum(SPEC2006[n].cold_miss_frac for n in COMPUTE_GROUP) / len(
            COMPUTE_GROUP
        )
        assert memory_avg > 3 * compute_avg

    def test_memory_group_footprints_exceed_llc_partition(self):
        """Independent misses must reach memory, not just the LLC."""
        for name in MEMORY_GROUP:
            assert SPEC2006[name].data_footprint_kb >= 8 * 1024, name

    def test_lbm_is_the_streaming_outlier(self):
        lbm = SPEC2006["lbm"]
        assert lbm.streaming_frac >= 0.4
        assert lbm.frac_store >= 0.2  # streaming *stores* (the L1-D bully)

    def test_batch_pointer_chasing_is_rare(self):
        heavy_chasers = [n for n, p in SPEC2006.items()
                         if p.pointer_chase_frac > 0.02]
        assert len(heavy_chasers) == 0


class TestServiceCategories:
    def test_services_chase_pointers(self):
        for name, profile in CLOUDSUITE.items():
            assert profile.pointer_chase_frac >= 0.015, name

    def test_services_have_large_code_footprints(self):
        smallest_service = min(p.instr_footprint_kb for p in CLOUDSUITE.values())
        largest_batch = max(p.instr_footprint_kb for p in SPEC2006.values())
        assert smallest_service >= largest_batch

    def test_services_have_sparse_independent_misses(self):
        for name, profile in CLOUDSUITE.items():
            assert profile.cold_miss_frac <= 0.03, name

    def test_services_spread_code_accesses(self):
        """Server stacks use a low region-popularity exponent (L1-I pressure)."""
        max_service_zipf = max(p.code_zipf for p in CLOUDSUITE.values())
        min_batch_zipf = min(p.code_zipf for p in SPEC2006.values())
        assert max_service_zipf < min_batch_zipf

    def test_every_service_has_queueing_headroom(self):
        for name, profile in CLOUDSUITE.items():
            qos = profile.qos
            assert qos.base_service_ms * 4 <= qos.target_ms, name
