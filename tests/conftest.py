"""Shared fixtures: tiny sampling configurations and common profiles.

Tests use deliberately small instruction budgets — they verify behavior and
invariants, not paper-fidelity statistics (the benchmarks do that).
"""

from __future__ import annotations

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.sampling import SamplingConfig
from repro.workloads.registry import get_profile


@pytest.fixture(scope="session")
def tiny_sampling() -> SamplingConfig:
    """One short sample: fast enough for unit tests."""
    return SamplingConfig(
        n_samples=1, warmup_instructions=1000, measure_instructions=1000, seed=7
    )


@pytest.fixture(scope="session")
def small_sampling() -> SamplingConfig:
    """Two medium samples: for tests asserting relative performance."""
    return SamplingConfig(
        n_samples=2, warmup_instructions=3000, measure_instructions=3000, seed=7
    )


@pytest.fixture(scope="session")
def base_config() -> CoreConfig:
    return CoreConfig()


@pytest.fixture(scope="session")
def web_search_profile():
    return get_profile("web_search")


@pytest.fixture(scope="session")
def zeusmp_profile():
    return get_profile("zeusmp")


@pytest.fixture(scope="session")
def gamess_profile():
    return get_profile("gamess")
