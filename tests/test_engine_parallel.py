"""Property tests: the parallel engine is result-transparent.

Running an experiment's job grid through a 4-worker process pool and then
assembling the figure from cache hits must produce results bit-identical
to a purely serial in-process run — the engine may only change *when and
where* a simulation executes, never its outcome.

The grids are shrunk (two batch co-runners, one LS service, two partition
schemes) so the property check stays test-suite-sized; the full grids run
through the same code paths via ``stretch-repro --jobs``.
"""

from __future__ import annotations

import pytest

from repro.core.partitioning import B_MODES, Q_MODES
from repro.cpu.sampling import SamplingConfig
from repro.engine import EngineConfig, ExecutionEngine, ResultStore
from repro.engine.store import reset_default_stores
from repro.experiments import fig06_rob_sensitivity as fig06
from repro.experiments import fig09_stretch_modes as fig09
from repro.experiments.common import Fidelity

LS = ("web_search",)
BATCH = ("gamess", "zeusmp")
SCHEMES = (B_MODES[1], Q_MODES[1])  # one B-mode, one Q-mode

#: Quick-fidelity structure (2 samples, warmup + measure) at test scale.
FIDELITY = Fidelity(
    "quick",
    SamplingConfig(n_samples=2, warmup_instructions=1000,
                   measure_instructions=1200, seed=42),
)


@pytest.fixture
def small_grids(monkeypatch):
    """Shrink the experiment grids so the property test stays fast."""
    for module in (fig06, fig09):
        monkeypatch.setattr(module, "LS_WORKLOADS", LS)
        monkeypatch.setattr(module, "BATCH_WORKLOADS", BATCH)
    monkeypatch.setattr(fig06, "ROB_SIZES", [96, 192])
    monkeypatch.setattr(fig06, "HIGHLIGHT_BATCH", "zeusmp")


def _serial(tmp_path, monkeypatch, experiment, **kwargs):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
    reset_default_stores()
    return experiment.run(FIDELITY, **kwargs)


def _parallel(tmp_path, monkeypatch, experiment, jobs, **kwargs):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
    reset_default_stores()
    engine = ExecutionEngine(EngineConfig(workers=4))
    report = engine.run_jobs(jobs)
    result = experiment.run(FIDELITY, **kwargs)
    return result, report


class TestParallelSerialEquivalence:
    def test_fig06_identical(self, tmp_path, monkeypatch, small_grids):
        serial = _serial(tmp_path, monkeypatch, fig06)
        jobs = fig06.jobs(FIDELITY)
        parallel, report = _parallel(tmp_path, monkeypatch, fig06, jobs)
        assert report.stats.executed == report.stats.unique > 0
        # Bit-identical: dataclass equality compares every float exactly.
        assert parallel == serial

    def test_fig09_identical(self, tmp_path, monkeypatch, small_grids):
        serial = _serial(tmp_path, monkeypatch, fig09, schemes=SCHEMES)
        jobs = fig09.jobs(FIDELITY, schemes=SCHEMES)
        parallel, report = _parallel(
            tmp_path, monkeypatch, fig09, jobs, schemes=SCHEMES
        )
        assert report.stats.executed == report.stats.unique > 0
        assert parallel == serial

    def test_fig09_second_run_is_all_hits(self, tmp_path, monkeypatch, small_grids):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "warm"))
        reset_default_stores()
        engine = ExecutionEngine(EngineConfig(workers=4))
        jobs = fig09.jobs(FIDELITY, schemes=SCHEMES)
        cold = engine.run_jobs(jobs)
        assert cold.stats.executed == cold.stats.unique
        warm = engine.run_jobs(jobs)
        assert warm.stats.cache_hits == warm.stats.unique
        assert warm.stats.executed == 0
        # The store round-trip preserves every value bit-exactly.
        assert warm.results == cold.results

    def test_engine_survives_memory_flush(self, tmp_path, monkeypatch, small_grids):
        """Disk layer alone (fresh process analogue) still answers the grid."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "disk"))
        reset_default_stores()
        engine = ExecutionEngine(EngineConfig(workers=2))
        jobs = fig06.jobs(FIDELITY)
        cold = engine.run_jobs(jobs)
        store = ResultStore(tmp_path / "disk")  # brand-new store, same dir
        warm = engine.run_jobs(jobs, store=store)
        assert warm.stats.cache_hits == warm.stats.unique
        assert warm.results == cold.results
