"""Tests for the simulated-processor configuration (paper Table II)."""

import pytest

from repro.cpu.config import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    PartitionPolicy,
    UncoreConfig,
)


class TestCacheConfig:
    def test_defaults_match_table2(self):
        c = CacheConfig()
        assert c.size_bytes == 64 * 1024
        assert c.line_bytes == 64
        assert c.ways == 8
        assert c.num_sets == 128

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000)

    def test_mshr_quota_check(self):
        with pytest.raises(ValueError):
            CacheConfig(mshrs=4, mshrs_per_thread=5)


class TestBranchPredictorConfig:
    def test_defaults_match_table2(self):
        b = BranchPredictorConfig()
        assert b.gshare_entries == 16 * 1024
        assert b.bimodal_entries == 4 * 1024
        assert b.btb_entries == 2 * 1024

    @pytest.mark.parametrize("field", [
        "gshare_entries", "bimodal_entries", "chooser_entries", "btb_entries",
    ])
    def test_non_power_of_two_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            BranchPredictorConfig(**{field: 1000})


class TestUncoreConfig:
    def test_memory_latency_cycles(self):
        u = UncoreConfig()
        # 75 ns at 2.5 GHz = 187.5 -> 188 cycles.
        assert u.memory_latency_cycles == 188

    def test_llc_size_matches_table2(self):
        assert UncoreConfig().llc_size_bytes == 8 * 1024 * 1024


class TestCoreConfig:
    def test_defaults_match_table2(self):
        c = CoreConfig()
        assert c.width == 6
        assert c.rob_entries == 192
        assert c.rob_limits == (96, 96)
        assert c.lsq_entries == 64
        assert c.lsq_limits == (32, 32)
        assert c.pipeline_flush_cycles == 12
        assert c.fetch_policy == "icount"

    def test_limit_exceeding_capacity_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_limits=(200, 96))
        with pytest.raises(ValueError):
            CoreConfig(lsq_limits=(96, 32))

    def test_nonpositive_limits_rejected(self):
        with pytest.raises(ValueError):
            CoreConfig(rob_limits=(0, 96))

    def test_bad_fetch_policy(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_policy="magic")

    def test_bad_fetch_ratio(self):
        with pytest.raises(ValueError):
            CoreConfig(fetch_ratio=(0, 4))

    def test_with_rob_partition_sets_limits(self):
        c = CoreConfig().with_rob_partition(56, 136)
        assert c.rob_limits == (56, 136)

    def test_with_rob_partition_lsq_proportional(self):
        c = CoreConfig().with_rob_partition(56, 136)
        # LSQ scales in proportion to the ROB (paper §IV footnote).
        assert c.lsq_limits == (56 * 64 // 192, 136 * 64 // 192)
        assert sum(c.lsq_limits) <= c.lsq_entries

    def test_with_rob_partition_overflow(self):
        with pytest.raises(ValueError):
            CoreConfig().with_rob_partition(100, 100)

    def test_single_thread_full_rob(self):
        c = CoreConfig().single_thread(192)
        assert c.rob_limits[0] == 192
        assert c.lsq_limits[0] == 64

    def test_single_thread_small_rob(self):
        c = CoreConfig().single_thread(48)
        assert c.rob_limits[0] == 48
        assert c.lsq_limits[0] == 48 * 64 // 192

    def test_single_thread_out_of_range(self):
        with pytest.raises(ValueError):
            CoreConfig().single_thread(0)
        with pytest.raises(ValueError):
            CoreConfig().single_thread(500)

    def test_shared_policy_accepted(self):
        c = CoreConfig(rob_policy=PartitionPolicy.SHARED)
        assert c.rob_policy is PartitionPolicy.SHARED

    def test_frozen(self):
        with pytest.raises(Exception):
            CoreConfig().width = 8  # type: ignore[misc]

    def test_hashable_for_caching(self):
        assert hash(CoreConfig()) == hash(CoreConfig())
