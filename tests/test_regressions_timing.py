"""Regression tests for the four latent timing-model bugs fixed together
with the introduction of the :mod:`repro.check` harness.

Each test encodes the *semantic* contract the bug violated, so it fails on
the pre-fix code and pins the fixed behavior:

1. falsy-zero event guards — an enabling event at cycle 0 is a real event;
2. commit arbitration follows the fetch policy's selection, not cycle parity;
3. idle fast-forward accounts MLP occupancy at event boundaries inside the
   gap, not by weighting the gap-start occupancy by the whole gap;
4. ``PartitionedResource.reset_stats`` rebases peaks to current usage.
"""

import numpy as np
import pytest

from repro.cpu.caches import MSHRFile
from repro.cpu.config import CoreConfig
from repro.cpu.isa import OpClass
from repro.cpu.metrics import MLP_BUCKETS
from repro.cpu.rob import PartitionedResource
from repro.cpu.smt_core import SMTCore
from repro.cpu.trace import Trace


def alu_trace(n=64, name="alu") -> Trace:
    return Trace(
        name=name,
        op=np.full(n, OpClass.INT_ALU, dtype=np.uint8),
        dep1=np.zeros(n, dtype=np.int64),
        dep2=np.zeros(n, dtype=np.int64),
        pc=np.full(n, 0x1000, dtype=np.int64),
        addr=np.zeros(n, dtype=np.int64),
        taken=np.zeros(n, dtype=bool),
        target=np.zeros(n, dtype=np.int64),
        sid=np.zeros(n, dtype=np.int64),
    )


def _stall_frontends(core, until=10**9):
    """Park every front end so only manually injected state acts."""
    for ts in core._threads:
        ts.fe_stall_until = until


def _inject_inflight(core, thread, completion, is_mem=False):
    """Place one in-flight µop in the thread's ROB (and LSQ if memory)."""
    core.rob.allocate(thread)
    if is_mem:
        core.lsq.allocate(thread)
    core._threads[thread].rob_q.append((completion, is_mem))


class TestFalsyZeroEventGuard:
    """Bug 1: ``if next_event`` treated a cycle-0 event as "no event"."""

    def test_earliest_event_at_cycle_zero_is_not_none(self):
        core = SMTCore(CoreConfig(), (alu_trace(), alu_trace(name="b")))
        _stall_frontends(core, until=0)
        _inject_inflight(core, 0, completion=0)
        # The contract the truthiness guard broke: a completion at cycle 0
        # must be reported as event 0, never conflated with None.
        assert core._earliest_event(0) == 0
        assert core._earliest_event(0) is not None

    def test_earliest_event_none_when_idle(self):
        core = SMTCore(CoreConfig(), (alu_trace(), alu_trace(name="b")))
        _stall_frontends(core, until=0)
        assert core._earliest_event(0) is None

    def test_drain_commits_event_at_cycle_zero(self):
        core = SMTCore(CoreConfig(), (alu_trace(), alu_trace(name="b")))
        _inject_inflight(core, 0, completion=0)
        core._drain()
        assert core._threads[0].committed == 1
        assert core.cycle == 0  # ready at cycle 0: no clock advance needed

    def test_fast_forward_from_cycle_zero(self):
        """Fast-forward across a gap whose bounding event is small and real."""
        core = SMTCore(CoreConfig(), (alu_trace(), alu_trace(name="b")))
        _stall_frontends(core)
        _inject_inflight(core, 0, completion=3)
        core._simulate_until(1, max_cycles=100)
        assert core._threads[0].committed == 1
        assert core.cycle == 4  # jumped 0 -> 3, committed at 3, advanced once


class TestCommitArbitrationFollowsPolicy:
    """Bug 2: commit priority used ``cycle & 1`` instead of the policy."""

    def test_round_robin_selection_commits_first(self):
        # At cycle 0 RoundRobinPolicy orders (1, 0); the old parity rule
        # picked thread 0.  With width=1 only the selected thread commits.
        config = CoreConfig(width=1, fetch_policy="round_robin")
        core = SMTCore(config, (alu_trace(), alu_trace(name="b")))
        _stall_frontends(core)
        _inject_inflight(core, 0, completion=0)
        _inject_inflight(core, 1, completion=0)
        core._simulate_until(1, max_cycles=10)
        assert core._threads[1].committed == 1
        assert core._threads[0].committed == 0

    def test_icount_selection_commits_first(self):
        # ICOUNT prefers the thread with fewer in-flight µops: load thread 0
        # with more entries and let both heads be ready; with width=1 the
        # less-occupied thread 1 must commit first.
        config = CoreConfig(width=1)
        core = SMTCore(config, (alu_trace(), alu_trace(name="b")))
        _stall_frontends(core)
        for __ in range(3):
            _inject_inflight(core, 0, completion=0)
        _inject_inflight(core, 1, completion=0)
        core._simulate_until(1, max_cycles=10)
        assert core._threads[1].committed == 1
        assert core._threads[0].committed == 0


class TestMlpGapAccounting:
    """Bug 3: gap-start MSHR occupancy was weighted by the whole gap."""

    def test_fill_retiring_inside_gap_splits_accounting(self):
        core = SMTCore(CoreConfig(), (alu_trace(), alu_trace(name="b")))
        _stall_frontends(core)
        # One data miss in flight, filling at cycle 30; the only enabling
        # event is an in-flight µop completing at 32, so the core
        # fast-forwards 0 -> 32 across the fill boundary.
        core.hierarchy.mshrs.acquire(0, block=0x99, now=0, latency=30)
        _inject_inflight(core, 0, completion=32, is_mem=True)
        core._simulate_until(1, max_cycles=100)
        hist = core._mlp_hist[0]
        # Cycles 0-29 see one miss in flight, 30-31 none; cycle 32 (the
        # commit cycle) samples occupancy 0.  Pre-fix the whole 32-cycle gap
        # was booked at occupancy 1.
        assert hist[1] == 30
        assert hist[0] == 3
        assert sum(hist) == core.cycle

    def test_occupancy_segments_multi_fill(self):
        mshrs = MSHRFile(total=10, per_thread=5, n_threads=2)
        mshrs.acquire(0, block=1, now=0, latency=5)   # fills at 5
        mshrs.acquire(0, block=2, now=0, latency=12)  # fills at 12
        segments = mshrs.occupancy_segments(0, 0, 20)
        assert segments == [(5, 2), (7, 1), (8, 0)]
        assert sum(span for span, __ in segments) == 20

    def test_occupancy_segments_match_per_cycle_occupancy(self):
        mshrs = MSHRFile(total=10, per_thread=5, n_threads=2)
        for block, latency in ((1, 3), (2, 9), (3, 9), (4, 17)):
            mshrs.acquire(0, block, now=0, latency=latency)
        # Reconstruct the cycle-by-cycle histogram from segments and compare
        # against direct sampling on an identical MSHR file.
        twin = MSHRFile(total=10, per_thread=5, n_threads=2)
        for block, latency in ((1, 3), (2, 9), (3, 9), (4, 17)):
            twin.acquire(0, block, now=0, latency=latency)
        from_segments = [0] * (MLP_BUCKETS + 1)
        for span, occ in mshrs.occupancy_segments(0, 0, 25):
            from_segments[min(occ, MLP_BUCKETS)] += span
        sampled = [0] * (MLP_BUCKETS + 1)
        for cycle in range(25):
            sampled[min(twin.occupancy(0, cycle), MLP_BUCKETS)] += 1
        assert from_segments == sampled


class TestPeakUsageReset:
    """Bug 4: ``reset_stats`` zeroed peaks below live occupancy."""

    def test_reset_rebases_peaks_to_current_usage(self):
        rob = PartitionedResource("ROB", 8, (4, 4))
        for __ in range(3):
            rob.allocate(0)
        rob.allocate(1)
        rob.release(1)
        rob.reset_stats()
        assert rob.peak_usage == [3, 0]

    def test_peak_never_below_usage_after_reset(self):
        rob = PartitionedResource("ROB", 8, (4, 4))
        rob.allocate(0)
        rob.reset_stats()
        assert rob.peak_usage[0] >= rob.usage(0)

    def test_core_measurement_window_peak_covers_open_window(self):
        """A measurement window opened mid-flight must see current occupancy."""
        core = SMTCore(CoreConfig(), (alu_trace(n=512), alu_trace(n=512, name="b")))
        _stall_frontends(core)
        _inject_inflight(core, 0, completion=10**8)
        core._reset_measurement()
        assert core.rob.peak_usage[0] >= 1
