"""Invariant-checker tests: clean runs pass, corrupted state is detected."""

import numpy as np
import pytest

from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.cpu.config import CoreConfig
from repro.cpu.isa import OpClass
from repro.cpu.smt_core import SMTCore
from repro.cpu.trace import Trace
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile


def _core(**config_kwargs) -> SMTCore:
    traces = (
        generate_trace(get_profile("web_search"), 3000, seed=3),
        generate_trace(get_profile("zeusmp"), 3000, seed=4),
    )
    core = SMTCore(CoreConfig(**config_kwargs), traces)
    core.checker = InvariantChecker()
    return core


class TestCleanRuns:
    def test_colocated_run_passes_all_invariants(self):
        core = _core()
        core.run(800, warmup_instructions=400, require_all_threads=True)
        assert core.checker.violations == []

    def test_shared_rob_run_passes(self):
        from repro.cpu.config import PartitionPolicy

        core = _core(rob_policy=PartitionPolicy.SHARED)
        core.run(600, warmup_instructions=200)
        assert core.checker.violations == []

    def test_mode_switch_run_passes(self):
        core = _core()
        core.run(400, warmup_instructions=200)
        core.set_partitions((136, 56), (45, 18))
        core.run(400)
        assert core.checker.violations == []

    def test_checked_run_is_bit_identical_to_unchecked(self):
        traces = (
            generate_trace(get_profile("web_search"), 3000, seed=3),
            generate_trace(get_profile("zeusmp"), 3000, seed=4),
        )
        plain = SMTCore(CoreConfig(), traces).run(600, warmup_instructions=200)
        checked_core = SMTCore(CoreConfig(), traces)
        checked_core.checker = InvariantChecker()
        checked = checked_core.run(600, warmup_instructions=200)
        assert plain == checked


class TestCorruptionDetection:
    """Deliberately corrupt core state and assert the checker catches it."""

    def _settled_core(self) -> SMTCore:
        core = _core()
        core.run(200, warmup_instructions=100)
        assert core.checker.violations == []
        return core

    def test_detects_rob_leak(self):
        core = self._settled_core()
        core.rob.allocate(0)  # entry with no in-flight µop behind it
        with pytest.raises(InvariantViolation, match="ROB usage"):
            core.checker.on_cycle(core, core.cycle + 1)

    def test_detects_phantom_rob_entry(self):
        core = self._settled_core()
        core._threads[0].rob_q.append((core.cycle + 50, False))
        with pytest.raises(InvariantViolation, match="ROB usage"):
            core.checker.on_cycle(core, core.cycle + 1)

    def test_detects_lsq_mismatch(self):
        core = self._settled_core()
        # An LSQ entry with no memory µop in flight; keep the ROB law
        # satisfied so the LSQ law is what trips.
        core.lsq.allocate(0)
        with pytest.raises(InvariantViolation, match="LSQ usage"):
            core.checker.on_cycle(core, core.cycle + 1)

    def test_detects_nonmonotonic_clock(self):
        core = self._settled_core()
        with pytest.raises(InvariantViolation, match="clock"):
            core.checker.on_cycle(core, core.cycle - 1)

    def test_detects_mshr_overflow(self):
        core = self._settled_core()
        quota = core.hierarchy.mshrs.per_thread
        core.hierarchy.mshrs._inflight[0] = {
            block: 10**9 for block in range(quota + 1)
        }
        with pytest.raises(InvariantViolation, match="MSHR"):
            core.checker.on_cycle(core, core.cycle + 1)

    def test_detects_cursor_desync(self):
        core = self._settled_core()
        core.checker.on_cycle(core, core.cycle + 1)  # anchor the delta law
        core._threads[0].cursor.consumed += 5  # consumed µops vanish
        with pytest.raises(InvariantViolation, match="consumed"):
            core.checker.on_cycle(core, core.cycle + 2)

    def test_survey_mode_records_instead_of_raising(self):
        registry = MetricsRegistry(enabled=True)
        core = _core()
        core.checker = InvariantChecker(raise_on_violation=False,
                                        registry=registry)
        core.run(200, warmup_instructions=100)
        core.rob.allocate(0)
        core.checker.on_cycle(core, core.cycle + 1)
        assert core.checker.violations
        assert registry.counter("check.invariants.violations").value >= 1
        assert registry.counter("check.invariants.cycles").value > 0


class TestEnvAttach:
    def test_repro_check_env_attaches_checker(self, monkeypatch):
        from repro.obs.sampler import CHECK_ENV, attach_core_observers

        monkeypatch.setenv(CHECK_ENV, "1")
        core = SMTCore(
            CoreConfig(),
            (generate_trace(get_profile("web_search"), 2000, seed=3),),
        )
        attach_core_observers(core)
        assert isinstance(core.checker, InvariantChecker)
        core.run(200, warmup_instructions=100)
        assert core.checker.violations == []

    @pytest.mark.parametrize("value", [None, "", "0"])
    def test_unset_or_zero_env_leaves_core_unchecked(self, monkeypatch, value):
        from repro.obs.sampler import CHECK_ENV, attach_core_observers

        if value is None:
            monkeypatch.delenv(CHECK_ENV, raising=False)
        else:
            monkeypatch.setenv(CHECK_ENV, value)
        core = SMTCore(
            CoreConfig(),
            (generate_trace(get_profile("web_search"), 2000, seed=3),),
        )
        attach_core_observers(core)
        assert core.checker is None
