"""Tests for the SMT core timing simulator."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cpu.config import CoreConfig, PartitionPolicy
from repro.cpu.isa import OpClass
from repro.cpu.smt_core import SMTCore
from repro.cpu.trace import Trace
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile


def alu_trace(n=500, name="alu") -> Trace:
    """Pure independent ALU work: should commit near core width."""
    return Trace(
        name=name,
        op=np.full(n, OpClass.INT_ALU, dtype=np.uint8),
        dep1=np.zeros(n, dtype=np.int64),
        dep2=np.zeros(n, dtype=np.int64),
        # Constant PC: a single I-block, so these synthetic kernels are
        # never front-end bound (no wrap/cold-code effects).
        pc=np.full(n, 0x1000, dtype=np.int64),
        addr=np.zeros(n, dtype=np.int64),
        taken=np.zeros(n, dtype=bool),
        target=np.zeros(n, dtype=np.int64),
        sid=np.zeros(n, dtype=np.int64),
    )


def serial_chain_trace(n=500, name="chain") -> Trace:
    """Fully serialized dependency chain: IPC must approach 1."""
    dep = np.ones(n, dtype=np.int64)
    dep[0] = 0
    trace = alu_trace(n, name)
    return replace_col(trace, dep1=dep)


def replace_col(trace: Trace, **cols) -> Trace:
    data = {f: getattr(trace, f) for f in
            ("name", "op", "dep1", "dep2", "pc", "addr", "taken", "target", "sid")}
    data.update(cols)
    return Trace(**data)


def ws_trace(n=8000, seed=1) -> Trace:
    return generate_trace(get_profile("web_search"), n, seed=seed)


def zm_trace(n=8000, seed=1) -> Trace:
    return generate_trace(get_profile("zeusmp"), n, seed=seed)


class TestConstruction:
    def test_one_or_two_threads(self):
        SMTCore(CoreConfig(), (alu_trace(),))
        SMTCore(CoreConfig(), (alu_trace(), alu_trace()))
        with pytest.raises(ValueError):
            SMTCore(CoreConfig(), ())

    def test_shared_policy_raises_limits(self):
        core = SMTCore(
            CoreConfig(rob_policy=PartitionPolicy.SHARED),
            (alu_trace(), alu_trace()),
        )
        assert core.rob.limits == (192, 192)

    def test_partitioned_policy_uses_config_limits(self):
        core = SMTCore(CoreConfig(), (alu_trace(), alu_trace()))
        assert core.rob.limits == (96, 96)


class TestSoloExecution:
    def test_commits_target(self):
        core = SMTCore(CoreConfig().single_thread(192), (alu_trace(2000),))
        result = core.run(500)
        assert result.threads[0].instructions >= 500
        assert result.cycles > 0

    def test_independent_alu_ipc_near_width(self):
        """Width-6 core, 4 ALUs: independent ALU ops commit ~4/cycle."""
        core = SMTCore(CoreConfig().single_thread(192), (alu_trace(4000),))
        result = core.run(3000, warmup_instructions=500)
        assert result.threads[0].uipc == pytest.approx(4.0, rel=0.2)

    def test_serial_chain_ipc_near_one(self):
        # No wrap: a wrap would break the chain (dep1[0] = 0) and let two
        # chain segments overlap in the window.
        core = SMTCore(CoreConfig().single_thread(192), (serial_chain_trace(4000),))
        result = core.run(3000, warmup_instructions=500)
        assert result.threads[0].uipc == pytest.approx(1.0, rel=0.15)

    def test_uipc_never_exceeds_width(self):
        core = SMTCore(CoreConfig().single_thread(192), (alu_trace(4000),))
        result = core.run(3000)
        assert result.threads[0].uipc <= CoreConfig().width

    def test_deterministic(self):
        def run_once():
            core = SMTCore(CoreConfig().single_thread(192), (ws_trace(),))
            return core.run(2000, warmup_instructions=1000).threads[0].uipc

        assert run_once() == run_once()

    def test_max_cycles_enforced(self):
        core = SMTCore(CoreConfig().single_thread(192), (ws_trace(),))
        with pytest.raises(RuntimeError, match="max_cycles"):
            core.run(5000, max_cycles=10)

    def test_invalid_instruction_count(self):
        core = SMTCore(CoreConfig().single_thread(192), (alu_trace(),))
        with pytest.raises(ValueError):
            core.run(0)


class TestColocation:
    def test_both_threads_progress(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        result = core.run(1500, warmup_instructions=500)
        assert result.threads[0].instructions >= 1
        assert result.threads[1].instructions >= 1500 or result.threads[0].instructions >= 1500

    def test_require_all_threads(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        result = core.run(1000, warmup_instructions=200, require_all_threads=True)
        assert all(t.instructions >= 1000 for t in result.threads)

    def test_colocation_slows_both_threads(self, small_sampling):
        from repro.cpu.sampling import mean_uipc, sample_colocation, sample_solo

        ws, zm = get_profile("web_search"), get_profile("zeusmp")
        ws_alone = mean_uipc(sample_solo(ws, CoreConfig().single_thread(192),
                                         small_sampling))
        zm_alone = mean_uipc(sample_solo(zm, CoreConfig().single_thread(192),
                                         small_sampling))
        pair = sample_colocation(ws, zm, CoreConfig(), small_sampling)
        assert mean_uipc(pair, 0) < ws_alone
        assert mean_uipc(pair, 1) < zm_alone

    def test_workload_names_recorded(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        result = core.run(300, require_all_threads=True)
        assert result.threads[0].workload == "web_search"
        assert result.threads[1].workload == "zeusmp"


class TestRobPartitioning:
    def test_larger_partition_helps_mlp_workload(self, small_sampling):
        """zeusmp (high MLP) gains from 136 entries vs 56 (the B-mode shift)."""
        from repro.cpu.sampling import mean_uipc, sample_solo

        zm = get_profile("zeusmp")
        u_small = mean_uipc(sample_solo(zm, CoreConfig().single_thread(56),
                                        small_sampling))
        u_big = mean_uipc(sample_solo(zm, CoreConfig().single_thread(136),
                                      small_sampling))
        assert u_big > u_small * 1.05

    def test_occupancy_respects_partition(self):
        config = CoreConfig().with_rob_partition(56, 136)
        core = SMTCore(config, (zm_trace(), zm_trace(seed=2)))
        core.run(800, require_all_threads=True)
        assert core.rob.peak_usage[0] <= 56
        assert core.rob.peak_usage[1] <= 136

    def test_shared_rob_allows_monopolization(self):
        config = CoreConfig(rob_policy=PartitionPolicy.SHARED)
        core = SMTCore(config, (ws_trace(), zm_trace()))
        core.run(800, require_all_threads=True)
        assert max(core.rob.peak_usage) > 96


class TestStretchReconfiguration:
    def test_set_partitions_reprograms_limits(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        core.run(300, require_all_threads=True)
        core.set_partitions((56, 136), (18, 45))
        assert core.rob.limits == (56, 136)
        assert core.lsq.limits == (18, 45)

    def test_set_partitions_drains_inflight(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        core.run(300, require_all_threads=True)
        core.set_partitions((56, 136), (18, 45))
        assert core.rob.total_usage == 0

    def test_set_partitions_applies_flush_penalty(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        core.run(300, require_all_threads=True)
        before = core.cycle
        core.set_partitions((56, 136), (18, 45))
        stalls = [ts.fe_stall_until for ts in core._threads]
        assert all(s >= before + CoreConfig().pipeline_flush_cycles for s in stalls)

    def test_execution_continues_after_switch(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        core.run(300, require_all_threads=True)
        core.set_partitions((56, 136), (18, 45))
        result = core.run(300, require_all_threads=True)
        assert all(t.instructions >= 300 for t in result.threads)


class TestWrongPath:
    def test_ghosts_squashed_at_resolution(self):
        """Wrong-path ghosts never outlive the mispredicted branch."""
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        core.run(2000, warmup_instructions=500, require_all_threads=True)
        # After a run, every remaining ROB entry is accounted for by the
        # in-flight queues plus any not-yet-resolved wrong-path ghosts.
        accounted = sum(len(ts.rob_q) + ts.ghosts for ts in core._threads)
        assert core.rob.total_usage == accounted

    def test_drain_clears_ghosts(self):
        core = SMTCore(CoreConfig(), (ws_trace(), zm_trace()))
        core.run(500, require_all_threads=True)
        core.set_partitions((56, 136), (18, 45))
        assert all(ts.ghosts == 0 for ts in core._threads)
        assert core.rob.total_usage == 0

    def test_wrong_path_occupies_shared_rob(self):
        """Under dynamic sharing, a miss-bound LS thread holds far more
        entries than a stall-only front end would (the Fig. 11 mechanism)."""
        config = CoreConfig(rob_policy=PartitionPolicy.SHARED)
        core = SMTCore(config, (ws_trace(20000), zm_trace(20000)))
        core.run(3000, warmup_instructions=500, require_all_threads=True)
        assert core.rob.peak_usage[0] > 40  # stall-only front end peaked ~13

    def test_mispredict_penalty_still_applies(self):
        """Throughput with mispredicts is below a perfectly predicted run."""
        import numpy as np

        n = 4000
        base = alu_trace(n)
        # Every 40th µop is a fully biased, never-taken branch (predictable).
        op = base.op.copy()
        op[::40] = OpClass.BRANCH
        predictable = replace_col(base, op=op)
        # Same structure but alternating outcomes (hard to predict).
        taken = base.taken.copy()
        taken[::80] = True
        noisy = replace_col(predictable, taken=taken)

        def uipc(trace):
            core = SMTCore(CoreConfig().single_thread(192), (trace,))
            return core.run(3000, warmup_instructions=500).threads[0].uipc

        assert uipc(noisy) < uipc(predictable)
