"""Smoke tests for the extension experiment harnesses (tiny scale)."""

import pytest

from repro.cpu.sampling import SamplingConfig
from repro.experiments.common import Fidelity

TINY = Fidelity(
    "tiny",
    SamplingConfig(n_samples=1, warmup_instructions=1500,
                   measure_instructions=2000, seed=5),
)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestSensitivity:
    def test_runs_and_formats(self, monkeypatch):
        from repro.experiments import ext_sensitivity as ext

        monkeypatch.setattr(ext, "PAIRS", (("web_search", "zeusmp"),))
        result = ext.run(TINY)
        assert len(result.points) == 9  # 3 axes x 3 values
        assert {p.axis for p in result.points} == {
            "mshrs/thread", "memory ns", "ROB entries"
        }
        assert "sensitivity" in result.format()

    def test_along_filters(self, monkeypatch):
        from repro.experiments import ext_sensitivity as ext

        monkeypatch.setattr(ext, "PAIRS", (("web_search", "gamess"),))
        result = ext.run(TINY)
        assert len(result.along("memory ns")) == 3
        assert result.along("nonexistent") == []


class TestAdaptive:
    def test_runs_and_formats(self, monkeypatch):
        from repro.experiments import ext_adaptive as ext

        monkeypatch.setattr(ext, "BATCH_CORUNNERS", ("zeusmp",))
        result = ext.run(TINY)
        assert {d.policy for d in result.days} == {"two-point", "adaptive"}
        assert result.mean_gain("adaptive") == pytest.approx(
            [d.daily_batch_gain for d in result.days
             if d.policy == "adaptive"][0]
        )
        assert "adaptive" in result.format()

    def test_violation_rates_bounded(self, monkeypatch):
        from repro.experiments import ext_adaptive as ext

        monkeypatch.setattr(ext, "BATCH_CORUNNERS", ("gamess",))
        result = ext.run(TINY)
        for day in result.days:
            assert 0.0 <= day.violation_rate <= 1.0
            assert 0.0 <= day.bmode_fraction <= 1.0


class TestEnergy:
    def test_runs_and_formats(self, monkeypatch):
        from repro.experiments import ext_energy as ext

        monkeypatch.setattr(ext, "PAIRS", (("web_search", "zeusmp"),))
        result = ext.run(TINY)
        assert len(result.rows) == 2
        assert result.ipj_gain("web_search+zeusmp") == result.mean_ipj_gain()
        assert "instr/J" in result.format()

    def test_modes_share_static_power_story(self, monkeypatch):
        from repro.experiments import ext_energy as ext

        monkeypatch.setattr(ext, "PAIRS", (("web_search", "gamess"),))
        result = ext.run(TINY)
        watts = {r.mode: r.watts for r in result.rows}
        # Dynamic work differs but the power envelopes stay comparable.
        assert abs(watts["B-mode"] - watts["Baseline"]) / watts["Baseline"] < 0.3
