"""Tests for the cluster-level colocation model."""

import pytest

from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.stretch import StretchMode
from repro.core.cluster import ClusterSimulator, ClusterTimeline
from repro.qos.diurnal import web_search_cluster_load
from repro.workloads.registry import get_profile


def performance_model() -> ColocationPerformance:
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(0.52, 0.50),
            StretchMode.B_MODE: ModePerformance(0.46, 0.58),
            StretchMode.Q_MODE: ModePerformance(0.58, 0.40),
        },
    )


def make_cluster(**kwargs) -> ClusterSimulator:
    defaults = dict(n_servers=3, seed=5)
    defaults.update(kwargs)
    return ClusterSimulator(get_profile("web_search"), performance_model(),
                            **defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_cluster(n_servers=0)
        with pytest.raises(ValueError):
            make_cluster(overprovision=0.8)
        with pytest.raises(ValueError):
            make_cluster(balance_jitter=0.7)


class TestRunDay:
    @pytest.fixture(scope="class")
    def timeline(self):
        cluster = ClusterSimulator(
            get_profile("web_search"), performance_model(), n_servers=3, seed=5
        )
        return cluster.run_day(web_search_cluster_load, window_minutes=60,
                               requests_per_window=500)

    def test_per_server_timelines(self, timeline):
        assert len(timeline.servers) == 3
        assert all(len(t.windows) == 24 for t in timeline.servers)

    def test_servers_differ_by_jitter(self, timeline):
        loads = [
            tuple(w.load_fraction for w in t.windows) for t in timeline.servers
        ]
        assert len(set(loads)) == 3

    def test_offpeak_bmode_engagement(self, timeline):
        # Over-provisioned cluster spends most of the day below threshold.
        assert timeline.bmode_fraction > 0.3

    def test_violations_bounded(self, timeline):
        assert timeline.violation_rate < 0.3

    def test_cluster_gain_positive(self, timeline):
        gain = timeline.batch_throughput_gain(0.50)
        assert gain > 0.0
        per_server = timeline.per_server_gains(0.50)
        assert len(per_server) == 3
        assert abs(gain - sum(per_server) / 3) < 1e-12

    def test_reproducible(self):
        def run():
            cluster = ClusterSimulator(
                get_profile("web_search"), performance_model(),
                n_servers=2, seed=9,
            )
            t = cluster.run_day(lambda h: 0.5, window_minutes=120,
                                requests_per_window=400)
            return t.violation_rate, t.bmode_fraction

        assert run() == run()


class TestEmptyTimeline:
    def test_aggregates(self):
        t = ClusterTimeline()
        assert t.violation_rate == 0.0
        assert t.bmode_fraction == 0.0
        assert t.batch_throughput_gain(1.0) == 0.0
