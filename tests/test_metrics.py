"""Tests for per-thread metrics."""

import pytest

from repro.cpu.metrics import MLP_BUCKETS, SimulationResult, ThreadResult


def make_result(**overrides) -> ThreadResult:
    data = dict(thread=0, workload="w", instructions=1000, cycles=500)
    data.update(overrides)
    return ThreadResult(**data)


class TestThreadResult:
    def test_uipc(self):
        assert make_result().uipc == pytest.approx(2.0)

    def test_uipc_zero_cycles(self):
        assert make_result(cycles=0).uipc == 0.0

    def test_mpki(self):
        r = make_result(l1d_misses=50, l1i_misses=10)
        assert r.l1d_mpki == pytest.approx(50.0)
        assert r.l1i_mpki == pytest.approx(10.0)

    def test_mpki_zero_instructions(self):
        assert make_result(instructions=0, l1d_misses=5).l1d_mpki == 0.0

    def test_branch_misprediction_rate(self):
        r = make_result(branches=100, branch_mispredicts=7)
        assert r.branch_misprediction_rate == pytest.approx(0.07)

    def test_branch_rate_no_branches(self):
        assert make_result().branch_misprediction_rate == 0.0

    def test_mlp_at_least(self):
        hist = [50, 30, 15, 5] + [0] * (MLP_BUCKETS - 3)
        r = make_result(mlp_cycles=hist)
        assert r.mlp_at_least(0) == pytest.approx(1.0)
        assert r.mlp_at_least(1) == pytest.approx(0.5)
        assert r.mlp_at_least(2) == pytest.approx(0.2)
        assert r.mlp_at_least(3) == pytest.approx(0.05)

    def test_mlp_at_least_empty(self):
        assert make_result().mlp_at_least(2) == 0.0

    def test_mlp_out_of_range(self):
        with pytest.raises(ValueError):
            make_result().mlp_at_least(MLP_BUCKETS + 1)

    def test_mlp_monotone_decreasing(self):
        hist = [10, 9, 8, 7, 6, 5, 4, 3, 2]
        r = make_result(mlp_cycles=hist)
        values = [r.mlp_at_least(k) for k in range(MLP_BUCKETS + 1)]
        assert values == sorted(values, reverse=True)


class TestSimulationResult:
    def test_total_uipc(self):
        result = SimulationResult(
            cycles=100,
            threads=(make_result(cycles=100, instructions=100),
                     make_result(thread=1, cycles=100, instructions=300)),
        )
        assert result.total_uipc == pytest.approx(4.0)

    def test_thread_accessor(self):
        result = SimulationResult(cycles=1, threads=(make_result(),))
        assert result.thread(0).workload == "w"
