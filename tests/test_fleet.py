"""Tests for the vectorized fleet engine (`repro.fleet`).

The load-bearing guarantees:

* `monitor_transition_vec` is element-wise identical to the scalar
  `monitor_transition` (exhaustive state-space sweep);
* the `tail="exact"` fleet path is bit-compatible with the legacy
  per-object `ClusterSimulator` loop;
* the surrogate path matches the exact path within the surrogate's
  *stated* held-out error bound (the ISSUE's seeded equivalence gate);
* sharding a fleet run never changes results (integer aggregates are
  exactly equal; float sums only to summation-order noise).
"""

import itertools

import numpy as np
import pytest

from repro.core.cluster import ClusterSimulator
from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.monitor import MonitorConfig, MonitorState, monitor_transition
from repro.core.stretch import StretchMode
from repro.engine import EngineConfig, ExecutionEngine
from repro.engine.store import ResultStore
from repro.fleet import (
    FleetConfig,
    FleetEngine,
    FleetTimeline,
    SurrogateGrid,
    TailSurrogate,
    fit_tail_surrogate,
    make_policy,
    monitor_transition_vec,
    register_load_curve,
    resolve_load_curve,
    run_fleet_sharded,
    shard_bounds,
)
from repro.fleet.policies import EXACT_JITTER_MAX, PolicyContext
from repro.util.rng import derive_seed
from repro.workloads.registry import get_profile


def performance_model() -> ColocationPerformance:
    """Hand-built per-mode model (avoids slow core simulation in tests)."""
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(0.52, 0.50),
            StretchMode.B_MODE: ModePerformance(0.46, 0.58),
            StretchMode.Q_MODE: ModePerformance(0.58, 0.40),
        },
    )


#: Small calibration grid: same request horizon the exact evaluator uses
#: (peak at max(20000, rpw)), coarse load axis, few replicates.
TEST_RPW = 400
TEST_GRID = SurrogateGrid(
    loads=(0.02, 0.3, 0.6, 0.9, 1.2),
    n_requests=TEST_RPW,
    peak_requests=20000,
    n_reps=6,
    n_val_reps=2,
    seed=0,
)


def fleet_config(**kwargs) -> FleetConfig:
    defaults = dict(
        n_servers=8,
        window_minutes=120.0,
        requests_per_window=TEST_RPW,
        seed=5,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


@pytest.fixture(scope="module")
def web_search_qos():
    return get_profile("web_search").qos


@pytest.fixture(scope="module")
def surrogate(web_search_qos) -> TailSurrogate:
    perf_factors = FleetEngine(
        get_profile("web_search"), performance_model(), fleet_config()
    ).perf_factors
    return fit_tail_surrogate(web_search_qos, perf_factors, TEST_GRID)


class TestMonitorTransitionVec:
    def test_exhaustive_equivalence_with_scalar(self):
        config = MonitorConfig(
            engage_fraction=0.6, engage_windows=2,
            violation_windows_to_throttle=2, throttle_windows=3,
        )
        space = list(itertools.product(
            range(3),            # mode
            range(4),            # compliant streak
            range(4),            # violation streak
            range(3),            # throttle remaining
            (False, True),       # violated
            (False, True),       # slack
        ))
        for q_mode_available in (True, False):
            mode = np.array([s[0] for s in space], dtype=np.int64)
            compliant = np.array([s[1] for s in space], dtype=np.int64)
            violation = np.array([s[2] for s in space], dtype=np.int64)
            throttle = np.array([s[3] for s in space], dtype=np.int64)
            violated = np.array([s[4] for s in space])
            slack = np.array([s[5] for s in space])
            ordered = monitor_transition_vec(
                mode, compliant, violation, throttle, violated, slack,
                config, q_mode_available,
            )
            for i, (m, cs, vs, tr, v, s) in enumerate(space):
                state, _, want_ordered = monitor_transition(
                    MonitorState(m, cs, vs, tr), v, s, config, q_mode_available
                )
                got = (mode[i], compliant[i], violation[i], throttle[i])
                want = (state.mode, state.compliant_streak,
                        state.violation_streak, state.throttle_remaining)
                assert got == want, (space[i], q_mode_available)
                assert bool(ordered[i]) == want_ordered, (
                    space[i], q_mode_available,
                )

    def test_throttle_corunner_equals_pre_window_throttle(self):
        # The engine derives "co-runner throttled this window" from
        # throttle_remaining > 0 at window start; scalar decisions agree.
        config = MonitorConfig()
        state = MonitorState(mode=0, violation_streak=2)
        state, corunner, ordered = monitor_transition(
            state, True, False, config
        )
        assert ordered and corunner
        assert state.throttle_remaining == config.throttle_windows
        # Next windows: throttling continues exactly while remaining > 0.
        for _ in range(config.throttle_windows - 1):
            pre = state.throttle_remaining > 0
            state, corunner, _ = monitor_transition(state, False, True, config)
            assert pre  # engine's view of "throttled now"


class TestPolicies:
    def ctx(self, n_servers=6, n_windows=12, seed=5) -> PolicyContext:
        return PolicyContext(
            n_servers=n_servers, n_windows=n_windows,
            overprovision=1.2, balance_jitter=0.05, seed=seed,
        )

    def test_uniform_equal_shares(self):
        ctx = self.ctx()
        loads = make_policy("uniform").server_loads(0.9, 3, ctx)
        assert loads.shape == (6,)
        assert np.allclose(loads, 0.9 / 1.2)

    def test_jittered_matches_legacy_streams(self):
        # Small fleets reproduce ClusterSimulator's per-server jitter rngs.
        ctx = self.ctx()
        loads = make_policy("jittered").server_loads(0.6, 4, ctx)
        share = 0.6 / 1.2
        for k in range(ctx.n_servers):
            rng = np.random.default_rng(derive_seed(ctx.seed, "jitter", k))
            jitter = 1.0 + rng.uniform(-0.05, 0.05, size=ctx.n_windows + 1)
            assert loads[k] == share * jitter[4 % (ctx.n_windows + 1)]

    def test_jittered_large_fleet_branch(self):
        ctx = self.ctx(n_servers=EXACT_JITTER_MAX + 1)
        policy = make_policy("jittered")
        loads = policy.server_loads(0.6, 2, ctx)
        share = 0.6 / 1.2
        assert loads.shape == (EXACT_JITTER_MAX + 1,)
        assert np.all(loads >= share * 0.95) and np.all(loads <= share * 1.05)
        assert np.array_equal(loads, policy.server_loads(0.6, 2, self.ctx(
            n_servers=EXACT_JITTER_MAX + 1)))
        assert not np.array_equal(loads, policy.server_loads(0.6, 3, ctx))

    def test_power_of_two_conserves_total_load(self):
        ctx = self.ctx(n_servers=64)
        loads = make_policy("power-of-two-choices").server_loads(0.6, 1, ctx)
        share = 0.6 / 1.2
        assert loads.mean() == pytest.approx(share)
        assert loads.std() > 0.0

    def test_locality_sharded_static_weights(self):
        ctx = self.ctx(n_servers=64)
        policy = make_policy("locality-sharded")
        first = policy.server_loads(0.6, 0, ctx)
        again = policy.server_loads(0.6, 7, ctx)
        assert np.array_equal(first, again)  # weights are static per fleet
        assert first.mean() == pytest.approx(0.6 / 1.2)
        assert len(np.unique(np.round(first, 12))) <= 16

    def test_locality_sharded_conserves_load_on_awkward_sizes(self):
        # Regression: normalizing the 16-entry *shard* weight vector
        # instead of the expanded per-server vector biased the fleet's
        # mean load whenever n_servers % n_shards != 0 (unequal shard
        # sizes weight the shard means unequally).
        share = 0.6 / 1.2
        for n_servers in (10, 17, 33, 63, 65, 100):
            ctx = self.ctx(n_servers=n_servers)
            loads = make_policy("locality-sharded").server_loads(0.6, 0, ctx)
            assert loads.mean() == pytest.approx(share), n_servers
        # 3 shards over 10 servers: maximally unequal split.
        from repro.fleet.policies import LocalityShardedPolicy

        ctx = self.ctx(n_servers=10)
        loads = LocalityShardedPolicy(n_shards=3).server_loads(0.6, 0, ctx)
        assert loads.mean() == pytest.approx(share)

    def test_jittered_never_wraps_past_configured_day(self):
        # Regression: the exact path indexed its cached matrix with
        # window % (n_windows + 1), so a serve run outliving the day
        # replayed window-0 jitter with period n_windows + 1.  Draws must
        # keep advancing each server's stream instead.
        ctx = self.ctx(n_windows=4)
        policy = make_policy("jittered")
        wrap_period = ctx.n_windows + 1
        early = policy.server_loads(0.6, 0, ctx)
        late = policy.server_loads(0.6, wrap_period, ctx)
        assert not np.array_equal(early, late)
        # The extended draws continue the legacy per-server streams: the
        # regenerated matrix prefix is bit-identical, and window w reads
        # draw w for any horizon.
        for window in (wrap_period, 3 * wrap_period + 2):
            loads = policy.server_loads(0.6, window, ctx)
            share = 0.6 / 1.2
            for k in range(ctx.n_servers):
                rng = np.random.default_rng(derive_seed(ctx.seed, "jitter", k))
                draws = 1.0 + rng.uniform(-0.05, 0.05, size=window + 1)
                assert loads[k] == share * draws[window], (window, k)

    def test_jittered_extension_keeps_cached_prefix(self):
        # Growing the cached matrix past the day must not perturb draws
        # already handed out (uniform draws consume the bit stream
        # sequentially, so the regenerated prefix is bit-identical).
        ctx = self.ctx(n_windows=4)
        policy = make_policy("jittered")
        before = [policy.server_loads(0.6, w, ctx) for w in range(5)]
        policy.server_loads(0.6, 40, ctx)  # grow well past the horizon
        after = [policy.server_loads(0.6, w, ctx) for w in range(5)]
        for w, (a, b) in enumerate(zip(before, after)):
            assert np.array_equal(a, b), w

    def test_make_policy_and_curves(self):
        with pytest.raises(KeyError, match="unknown load-balancing policy"):
            make_policy("round-robin")
        name, fn = resolve_load_curve("flat:0.4")
        assert name == "flat:0.4" and fn(13.0) == 0.4
        with pytest.raises(KeyError, match="unknown load curve"):
            resolve_load_curve("tides")
        register_load_curve("test-constant", lambda hour: 0.25)
        _, registered = resolve_load_curve("test-constant")
        assert registered(0.0) == 0.25
        assert resolve_load_curve(lambda hour: 0.1)[0] is None


class TestSurrogate:
    def test_roundtrip_values(self, surrogate):
        clone = TailSurrogate.from_values(surrogate.to_values())
        assert clone.perf_factors == surrogate.perf_factors
        assert clone.loads == surrogate.loads
        assert clone.error_bound_ms == surrogate.error_bound_ms
        assert np.array_equal(clone.quantiles_ms, surrogate.quantiles_ms)
        assert clone.qos == surrogate.qos

    def test_predict_interpolates_grid_means(self, surrogate):
        perf = surrogate.perf_factors[0]
        at_grid = surrogate.predict(np.asarray(surrogate.loads), perf)
        assert np.allclose(at_grid, surrogate.mean_ms[0])
        mid = (surrogate.loads[1] + surrogate.loads[2]) / 2.0
        between = surrogate.predict(np.array([mid]), perf)[0]
        lo, hi = sorted(surrogate.mean_ms[0][1:3])
        assert lo <= between <= hi

    def test_sample_monotone_in_uniform(self, surrogate):
        perf = np.full(9, surrogate.perf_factors[-1])
        load = np.full(9, 0.9)
        u = np.linspace(0.02, 0.98, 9)
        tails = surrogate.sample(load, perf, u)
        assert np.all(np.diff(tails) >= 0.0)
        assert np.all(tails >= 0.5 * surrogate.qos.base_service_ms)

    def test_unknown_perf_row_raises(self, surrogate):
        with pytest.raises(KeyError, match="not in fitted rows"):
            surrogate.sample(np.array([0.5]), np.array([0.123]), np.array([0.5]))

    def test_error_bound_is_positive_and_finite(self, surrogate):
        assert 0.0 < surrogate.error_bound_ms < 10_000.0


class TestExactEquivalence:
    """tail="exact" fleet runs are bit-compatible with ClusterSimulator."""

    @pytest.fixture(scope="class")
    def pair(self):
        profile = get_profile("web_search")
        performance = performance_model()
        config = fleet_config(n_servers=2, window_minutes=240.0,
                              requests_per_window=300)
        fleet = FleetEngine(profile, performance, config).run_day(
            "web_search", tail="exact"
        )
        legacy = ClusterSimulator(
            profile, performance, n_servers=2, seed=config.seed
        )._run_day(resolve_load_curve("web_search")[1],
                   window_minutes=240.0, requests_per_window=300)
        return fleet, FleetTimeline.from_cluster(legacy, 240.0)

    def test_integer_aggregates_identical(self, pair):
        fleet, legacy = pair
        assert np.array_equal(fleet.mode_counts, legacy.mode_counts)
        assert np.array_equal(fleet.violations, legacy.violations)
        assert np.array_equal(fleet.throttled, legacy.throttled)
        assert np.array_equal(fleet.server_violations, legacy.server_violations)
        assert np.array_equal(
            fleet.server_bmode_windows, legacy.server_bmode_windows
        )

    def test_float_aggregates_identical(self, pair):
        fleet, legacy = pair
        assert np.allclose(fleet.tail_ms_sum, legacy.tail_ms_sum, rtol=1e-9)
        assert np.allclose(
            fleet.batch_uipc_sum, legacy.batch_uipc_sum, rtol=1e-9
        )
        assert np.allclose(fleet.hours, legacy.hours)


class TestSurrogateEquivalenceGate:
    """Surrogate fleet vs exact DES fleet, within the stated error bound."""

    @pytest.fixture(scope="class")
    def runs(self, surrogate):
        profile = get_profile("web_search")
        performance = performance_model()
        config = fleet_config(n_servers=8)
        exact = FleetEngine(profile, performance, config).run_day(
            "web_search", tail="exact"
        )
        approx = FleetEngine(
            profile, performance, config, surrogate=surrogate
        ).run_day("web_search", tail="surrogate")
        return exact, approx

    def test_mean_tail_within_stated_error_bound(self, runs, surrogate):
        exact, approx = runs
        assert abs(approx.mean_tail_ms - exact.mean_tail_ms) <= (
            surrogate.error_bound_ms
        )

    def test_dynamics_agree(self, runs):
        exact, approx = runs
        assert abs(approx.violation_rate - exact.violation_rate) <= 0.15
        assert abs(approx.bmode_fraction - exact.bmode_fraction) <= 0.30
        # Both see the diurnal shape: more B-mode off-peak than at peak.
        assert approx.bmode_fraction > 0.2
        assert exact.bmode_fraction > 0.2


class TestSharding:
    def test_shard_bounds(self):
        assert shard_bounds(10, 3) == [(0, 3), (3, 6), (6, 10)]
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]
        assert shard_bounds(5, 1) == [(0, 5)]
        with pytest.raises(ValueError):
            shard_bounds(0, 2)

    def test_server_range_slices_match_full_run(self, surrogate):
        profile = get_profile("web_search")
        config = fleet_config(n_servers=64)
        engine = FleetEngine(
            profile, performance_model(), config, surrogate=surrogate
        )
        full = engine.run_day("web_search")
        parts = [
            engine.run_day("web_search", server_range=(lo, hi))
            for lo, hi in ((0, 21), (21, 43), (43, 64))
        ]
        merged = FleetTimeline.merge(parts)
        assert merged.n_servers == full.n_servers
        assert np.array_equal(merged.mode_counts, full.mode_counts)
        assert np.array_equal(merged.violations, full.violations)
        assert np.array_equal(merged.server_violations, full.server_violations)
        # Float sums agree up to summation-order noise only.
        assert np.allclose(merged.tail_ms_sum, full.tail_ms_sum, rtol=1e-12)
        assert np.allclose(
            merged.batch_uipc_sum, full.batch_uipc_sum, rtol=1e-12
        )

    def test_run_fleet_sharded_on_process_pool(self, tmp_path, surrogate):
        profile = get_profile("web_search")
        config = fleet_config(n_servers=12)
        full = FleetEngine(
            profile, performance_model(), config, surrogate=surrogate
        ).run_day("web_search")
        store = ResultStore(tmp_path)
        sharded = run_fleet_sharded(
            profile, performance_model(), config, "web_search",
            engine=ExecutionEngine(EngineConfig(workers=2)),
            store=store, n_shards=3, surrogate=surrogate,
        )
        assert sharded.n_servers == 12
        assert np.array_equal(sharded.violations, full.violations)
        assert np.array_equal(sharded.mode_counts, full.mode_counts)
        assert np.allclose(sharded.tail_ms_sum, full.tail_ms_sum, rtol=1e-12)

    def test_sharded_run_ships_custom_curve_to_workers(
        self, tmp_path, surrogate
    ):
        # Regression: register_load_curve writes a module-global dict that
        # never reaches shard pool workers — a custom named curve resolved
        # on the driver but raised KeyError inside run_fleet_sharded
        # workers.  A spawn-context pool reproduces the clean-process
        # worker state (fork would inherit the driver's registry and mask
        # the bug); the fix ships window-start samples in the job payload.
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        register_load_curve(
            "test-ramp", lambda hour: 0.2 + 0.02 * hour
        )
        profile = get_profile("web_search")
        config = fleet_config(n_servers=6)
        full = FleetEngine(
            profile, performance_model(), config, surrogate=surrogate
        ).run_day("test-ramp")
        spawn = multiprocessing.get_context("spawn")
        sharded = run_fleet_sharded(
            profile, performance_model(), config, "test-ramp",
            engine=ExecutionEngine(
                EngineConfig(workers=2),
                pool_factory=lambda workers: ProcessPoolExecutor(
                    max_workers=workers, mp_context=spawn
                ),
            ),
            store=ResultStore(tmp_path), n_shards=2, surrogate=surrogate,
        )
        assert np.array_equal(sharded.violations, full.violations)
        assert np.array_equal(sharded.mode_counts, full.mode_counts)
        assert np.allclose(sharded.tail_ms_sum, full.tail_ms_sum, rtol=1e-12)

    def test_sharded_requires_named_curve(self):
        config = fleet_config(n_servers=4)
        with pytest.raises(TypeError, match="named load curve"):
            run_fleet_sharded(
                get_profile("web_search"), performance_model(), config,
                lambda hour: 0.5,
            )


class TestFleetTimeline:
    def test_values_roundtrip(self, surrogate):
        engine = FleetEngine(
            get_profile("web_search"), performance_model(),
            fleet_config(n_servers=4), surrogate=surrogate,
        )
        timeline = engine.run_day("flat:0.5")
        clone = FleetTimeline.from_values(timeline.to_values())
        assert clone.n_servers == timeline.n_servers
        assert np.array_equal(clone.mode_counts, timeline.mode_counts)
        assert np.array_equal(clone.server_violations, timeline.server_violations)
        assert np.allclose(clone.tail_ms_sum, timeline.tail_ms_sum)
        assert clone.violation_rate == timeline.violation_rate

    def test_merge_rejects_mismatched_grids(self):
        a = FleetTimeline.empty(2, 12, 120.0)
        b = FleetTimeline.empty(2, 6, 240.0, shard_lo=2)
        with pytest.raises(ValueError, match="window grid"):
            FleetTimeline.merge([a, b])
        with pytest.raises(ValueError):
            FleetTimeline.merge([])

    def test_empty_aggregates(self):
        t = FleetTimeline.empty(0, 0, 10.0)
        assert t.violation_rate == 0.0
        assert t.bmode_fraction == 0.0
        assert t.mean_tail_ms == 0.0
        assert t.batch_throughput_gain(1.0) == 0.0
        assert t.straggler_p99_violations == 0.0


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n_servers=0)
        with pytest.raises(ValueError):
            FleetConfig(overprovision=0.9)
        with pytest.raises(ValueError):
            FleetConfig(balance_jitter=0.7)
        with pytest.raises(KeyError):
            FleetConfig(policy="round-robin")
        with pytest.raises(ValueError):
            FleetConfig(monitor=MonitorConfig(engage_fraction=0.5).__class__(
                engage_fraction=0.5, engage_windows=0))

    def test_engine_rejects_bad_ranges(self, surrogate):
        engine = FleetEngine(
            get_profile("web_search"), performance_model(),
            fleet_config(n_servers=4), surrogate=surrogate,
        )
        with pytest.raises(ValueError, match="server_range"):
            engine.run_day("flat:0.5", server_range=(2, 8))
        with pytest.raises(ValueError, match="tail"):
            engine.run_day("flat:0.5", tail="psychic")

    def test_engine_requires_qos_and_matching_model(self):
        with pytest.raises(ValueError, match="no QoS contract"):
            FleetEngine(get_profile("zeusmp"), performance_model())
        with pytest.raises(ValueError, match="performance model"):
            FleetEngine(get_profile("data_serving"), performance_model())


class TestFleetStepper:
    """The resumable step-window API behind `repro.service`."""

    def engine(self, surrogate, **cfg_kwargs) -> FleetEngine:
        return FleetEngine(
            get_profile("web_search"), performance_model(),
            fleet_config(**cfg_kwargs), surrogate=surrogate,
        )

    @staticmethod
    def assert_timelines_identical(a, b):
        assert np.array_equal(a.hours, b.hours)
        assert np.array_equal(a.mode_counts, b.mode_counts)
        assert np.array_equal(a.violations, b.violations)
        assert np.array_equal(a.throttled, b.throttled)
        assert np.array_equal(a.tail_ms_sum, b.tail_ms_sum)
        assert np.array_equal(a.batch_uipc_sum, b.batch_uipc_sum)
        assert np.array_equal(a.server_violations, b.server_violations)
        assert np.array_equal(a.server_bmode_windows, b.server_bmode_windows)

    def test_stepping_matches_run_day(self, surrogate):
        engine = self.engine(surrogate)
        stepper = engine.stepper("web_search")
        records = []
        while not stepper.done:
            records.append(stepper.step())
        self.assert_timelines_identical(
            stepper.timeline, self.engine(surrogate).run_day("web_search")
        )
        assert [r["window"] for r in records] == list(range(12))
        assert records[3]["hour"] == pytest.approx(6.0)

    def test_profiled_stepping_records_phases_identically(self, surrogate):
        """Phase timers populate under profiling without touching results."""
        from repro.obs.profiler import disable_profiling, enable_profiling

        baseline = self.engine(surrogate).run_day("web_search")
        profiler = enable_profiling()
        try:
            profiler.reset()
            profiled = self.engine(surrogate).run_day("web_search")
            for phase in ("loads", "gather", "tails", "monitor", "aggregate"):
                name = f"fleet.step.{phase}"
                assert profiler.calls(name) == 12, name
                assert profiler.seconds(name) >= 0.0
        finally:
            disable_profiling()
        self.assert_timelines_identical(profiled, baseline)

    def test_step_load_override_matches_curve(self, surrogate):
        """Feeding the curve's own values per window is bit-identical."""
        _, fn = resolve_load_curve("web_search")
        engine = self.engine(surrogate)
        fed = engine.stepper()
        k = 0
        while not fed.done:
            fed.step(fn(k * 2.0))
            k += 1
        self.assert_timelines_identical(
            fed.timeline, self.engine(surrogate).run_day("web_search")
        )

    def test_stepper_without_load_requires_fed_windows(self, surrogate):
        stepper = self.engine(surrogate).stepper()
        with pytest.raises(ValueError, match="cluster_load"):
            stepper.step()

    def test_step_past_end_raises(self, surrogate):
        stepper = self.engine(surrogate).stepper("flat:0.5")
        stepper.run()
        assert stepper.done and stepper.remaining == 0
        with pytest.raises(RuntimeError, match="complete"):
            stepper.step()

    def test_partial_run_then_finish(self, surrogate):
        stepper = self.engine(surrogate).stepper("web_search")
        stepper.run(n_windows=5)
        assert stepper.remaining == 7
        stepper.run()
        self.assert_timelines_identical(
            stepper.timeline, self.engine(surrogate).run_day("web_search")
        )

    def test_state_roundtrip_resumes_bit_identical(self, surrogate):
        from repro.fleet import FleetState

        first = self.engine(surrogate).stepper("web_search")
        first.run(n_windows=7)
        values = first.state.to_values()
        resumed = self.engine(surrogate).stepper(
            "web_search", state=FleetState.from_values(values)
        )
        resumed.run()
        self.assert_timelines_identical(
            resumed.timeline, self.engine(surrogate).run_day("web_search")
        )

    def test_state_slice_validation(self, surrogate):
        from repro.fleet import FleetState

        engine = self.engine(surrogate)
        state = FleetState.fresh(0, 4, 12, 120.0)
        with pytest.raises(ValueError, match="state covers"):
            engine.stepper("flat:0.5", state=state)

    def test_chunked_integer_aggregates_are_invariant(self, surrogate):
        whole = self.engine(surrogate).run_day("web_search")
        chunked = self.engine(surrogate).stepper(
            "web_search", chunk_size=3
        )
        chunked.run()
        t = chunked.timeline
        assert np.array_equal(t.mode_counts, whole.mode_counts)
        assert np.array_equal(t.violations, whole.violations)
        assert np.array_equal(t.throttled, whole.throttled)
        assert np.array_equal(t.server_violations, whole.server_violations)
        assert np.array_equal(
            t.server_bmode_windows, whole.server_bmode_windows
        )
        # float window sums differ only by summation order
        assert t.tail_ms_sum == pytest.approx(whole.tail_ms_sum)
        assert t.batch_uipc_sum == pytest.approx(whole.batch_uipc_sum)

    def test_chunk_env_override(self, surrogate, monkeypatch):
        from repro.fleet.engine import _resolve_chunk_size

        monkeypatch.setenv("REPRO_FLEET_CHUNK", "17")
        assert _resolve_chunk_size(None) == 17
        assert _resolve_chunk_size(4) == 4
        monkeypatch.setenv("REPRO_FLEET_CHUNK", "0")
        with pytest.raises(ValueError, match="REPRO_FLEET_CHUNK"):
            _resolve_chunk_size(None)

    def test_sliced_steppers_merge_to_whole(self, surrogate):
        parts = []
        for lo, hi in ((0, 3), (3, 8)):
            stepper = self.engine(surrogate).stepper(
                "web_search", server_range=(lo, hi)
            )
            stepper.run()
            parts.append(stepper.timeline)
        merged = FleetTimeline.merge(parts)
        whole = self.engine(surrogate).run_day("web_search")
        assert np.array_equal(merged.mode_counts, whole.mode_counts)
        assert np.array_equal(merged.violations, whole.violations)
        assert np.array_equal(merged.throttled, whole.throttled)
        assert np.array_equal(
            merged.server_violations, whole.server_violations
        )
        # float sums reassociate across the slice boundary
        assert merged.tail_ms_sum == pytest.approx(whole.tail_ms_sum)
        assert merged.batch_uipc_sum == pytest.approx(whole.batch_uipc_sum)
