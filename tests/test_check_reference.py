"""Differential oracle: FastCore, SMTCore and ReferenceCore bit-identical.

The 200-configuration sweep — every case run through all three engines —
is the acceptance gate for the optimized hot loops (ring-buffer dataflow,
idle fast-forward, slot interleaving, FastCore's event-horizon jumps): any
future optimization that changes a single committed instruction, stall
count, cycle total or MLP bucket on any configuration fails here.  The
stress cases (``build_stress_cases``) add targeted adversarial shapes for
the event-skipping path.
"""

import pytest

from repro.check.differential import (
    build_cases,
    build_stress_cases,
    compare_results,
    differential_sweep,
    run_case,
)
from repro.check.reference import ReferenceCore
from repro.cpu.config import CoreConfig
from repro.cpu.smt_core import SMTCore
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile


def _traces(*specs):
    return tuple(
        generate_trace(get_profile(name), 3000, seed=seed) for name, seed in specs
    )


class TestReferenceCoreBasics:
    def test_solo_run_bit_identical(self):
        traces = _traces(("web_search", 11))
        a = SMTCore(CoreConfig(), traces).run(500, warmup_instructions=200)
        b = ReferenceCore(CoreConfig(), traces).run(500, warmup_instructions=200)
        assert compare_results(a, b) == []
        assert a == b

    def test_colocated_run_bit_identical(self):
        traces = _traces(("web_search", 11), ("zeusmp", 12))
        config = CoreConfig().with_rob_partition(56, 136)
        a = SMTCore(config, traces).run(400, warmup_instructions=200,
                                        require_all_threads=True)
        b = ReferenceCore(config, traces).run(400, warmup_instructions=200,
                                              require_all_threads=True)
        assert compare_results(a, b) == []

    def test_mode_switch_drain_bit_identical(self):
        traces = _traces(("data_serving", 5), ("gamess", 6))
        smt = SMTCore(CoreConfig(), _traces(("data_serving", 5), ("gamess", 6)))
        ref = ReferenceCore(CoreConfig(), traces)
        r1 = smt.run(300, warmup_instructions=100)
        r2 = ref.run(300, warmup_instructions=100)
        assert compare_results(r1, r2) == []
        smt.set_partitions((136, 56), (45, 18))
        ref.set_partitions((136, 56), (45, 18))
        assert smt.cycle == ref.cycle
        assert compare_results(smt.run(300), ref.run(300)) == []

    def test_reference_rejects_more_than_two_threads(self):
        traces = _traces(("web_search", 1), ("zeusmp", 2), ("gamess", 3))
        with pytest.raises(ValueError):
            ReferenceCore(CoreConfig(), traces)


class TestDifferentialSweep:
    def test_200_random_configs_bit_identical(self):
        """Acceptance criterion: >= 200 seeded configs, zero divergence."""
        report = differential_sweep(build_cases(200, seed=0))
        assert report.total == 200
        assert report.ok, report.mismatches + report.errors

    def test_sweep_with_invariants_attached(self):
        report = differential_sweep(build_cases(15, seed=99),
                                    check_invariants=True)
        assert report.ok, report.mismatches + report.errors

    def test_sweep_covers_key_dimensions(self):
        cases = build_cases(200, seed=0)
        assert any(len(c.workloads) == 1 for c in cases)
        assert any(len(c.workloads) == 2 for c in cases)
        assert any(c.mode_switch is not None for c in cases)
        policies = {c.config.fetch_policy for c in cases}
        assert policies == {"icount", "round_robin", "ratio"}
        from repro.cpu.config import PartitionPolicy

        assert any(c.config.rob_policy is PartitionPolicy.SHARED for c in cases)

    def test_cases_are_deterministic(self):
        assert build_cases(10, seed=3) == build_cases(10, seed=3)
        assert build_cases(10, seed=3) != build_cases(10, seed=4)

    def test_stress_cases_bit_identical(self):
        """The adversarial event-skipping shapes survive all three engines."""
        cases = build_stress_cases(seed=0)
        tags = {case.tag for case in cases}
        assert {"switch-storm", "no-idle", "cycle0", "mshr-sat"} <= tags
        assert build_stress_cases(seed=0) == cases
        report = differential_sweep(cases, check_invariants=True)
        assert report.total == len(cases)
        assert report.ok, report.mismatches + report.errors

    def test_run_case_reports_differences(self):
        """compare_results localizes an injected divergence to its field."""
        case = build_cases(1, seed=5)[0]
        assert run_case(case) == []
        traces = _traces(("web_search", 11))
        a = SMTCore(CoreConfig(), traces).run(300)
        b = ReferenceCore(CoreConfig(), traces).run(300)
        b.threads[0].instructions += 1
        diffs = compare_results(a, b)
        assert len(diffs) == 1
        assert "instructions" in diffs[0]
