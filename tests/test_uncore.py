"""Tests for the memory hierarchy (L1s, LLC partitions, memory)."""

from dataclasses import replace

import pytest

from repro.cpu.config import CoreConfig
from repro.cpu.uncore import MemoryHierarchy


@pytest.fixture
def hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(CoreConfig())


class TestLoads:
    def test_l1_hit_latency(self, hierarchy):
        hierarchy.install_data(0, 0x1000, l1=True)
        latency, missed = hierarchy.load(0, pf_key=1, addr=0x1000, issue_cycle=0)
        assert latency == hierarchy.l1_hit_latency
        assert not missed

    def test_llc_hit_latency(self, hierarchy):
        hierarchy.install_data(0, 0x1000, l1=False)  # LLC only
        latency, missed = hierarchy.load(0, pf_key=1, addr=0x1000, issue_cycle=0)
        assert missed
        assert latency == hierarchy.l1_hit_latency + hierarchy.llc_latency

    def test_memory_latency(self, hierarchy):
        latency, missed = hierarchy.load(0, pf_key=1, addr=0x9000, issue_cycle=0)
        assert missed
        assert latency == (
            hierarchy.l1_hit_latency + hierarchy.llc_latency + hierarchy.memory_latency
        )

    def test_second_load_hits_l1(self, hierarchy):
        hierarchy.load(0, 1, 0x5000, 0)
        latency, missed = hierarchy.load(0, 1, 0x5000, 300)
        assert not missed
        assert latency == hierarchy.l1_hit_latency

    def test_mshr_limits_concurrent_misses(self, hierarchy):
        quota = CoreConfig().dcache.mshrs_per_thread
        latencies = [
            hierarchy.load(0, 1, 0x10000 + 64 * i, 0)[0] for i in range(quota + 1)
        ]
        # The (quota+1)-th concurrent miss is delayed by a structural stall.
        assert latencies[-1] > latencies[0]

    def test_load_counters(self, hierarchy):
        hierarchy.load(0, 1, 0x100, 0)
        assert hierarchy.loads[0] == 1
        assert hierarchy.l1d_misses[0] == 1


class TestStores:
    def test_store_allocates_line(self, hierarchy):
        assert hierarchy.store(0, 1, 0x2000, 0) is True  # miss
        assert hierarchy.store(0, 1, 0x2000, 1) is False  # now resident

    def test_store_never_consumes_mshr(self, hierarchy):
        for i in range(12):
            hierarchy.store(0, 1, 0x20000 + 64 * i, 0)
        assert hierarchy.mshrs.occupancy(0, 0) == 0


class TestSharingAndIsolation:
    def test_shared_l1d_threads_contend(self):
        h = MemoryHierarchy(CoreConfig())
        assert h.l1d[0] is h.l1d[1]

    def test_private_l1d_isolates(self):
        h = MemoryHierarchy(replace(CoreConfig(), private_l1d=True))
        assert h.l1d[0] is not h.l1d[1]

    def test_private_l1i_flag_independent(self):
        h = MemoryHierarchy(replace(CoreConfig(), private_l1i=True))
        assert h.l1i[0] is not h.l1i[1]
        assert h.l1d[0] is h.l1d[1]

    def test_llc_partitions_always_private(self, hierarchy):
        assert hierarchy.llc[0] is not hierarchy.llc[1]

    def test_thread_address_spaces_disjoint(self, hierarchy):
        """Same virtual address on both threads: no accidental sharing."""
        hierarchy.load(0, 1, 0x4000, 0)
        __, missed = hierarchy.load(1, 1, 0x4000, 0)
        assert missed  # thread 1 does not hit thread 0's line

    def test_shared_l1_capacity_contention(self, hierarchy):
        """Thread 1 streaming evicts thread 0's shared-L1 lines."""
        hierarchy.load(0, 1, 0x4000, 0)
        for i in range(3000):  # far beyond 64 KB
            hierarchy.store(1, 2, 0x100000 + 64 * i, 0)
        __, missed = hierarchy.load(0, 1, 0x4000, 10**6)
        assert missed


class TestInstructionSide:
    def test_fetch_hit_no_delay(self, hierarchy):
        hierarchy.install_code(0, 0x100, l1=True)
        assert hierarchy.fetch_block(0, 0x100) == 0

    def test_fetch_miss_delay(self, hierarchy):
        delay = hierarchy.fetch_block(0, 0x40000)
        assert delay >= hierarchy.llc_latency
        assert hierarchy.l1i_misses[0] == 1


class TestPrefetching:
    def test_stream_key_triggers_prefetch(self, hierarchy):
        misses = 0
        for i in range(20):
            __, missed = hierarchy.load(0, pf_key=-1, addr=0x80000 + 64 * i,
                                        issue_cycle=i * 400)
            misses += missed
        assert misses <= 5  # steady-state stream hits via prefetcher

    def test_positive_pc_does_not_train(self, hierarchy):
        misses = 0
        for i in range(20):
            __, missed = hierarchy.load(0, pf_key=1, addr=0x80000 + 64 * i,
                                        issue_cycle=i * 400)
            misses += missed
        assert misses == 20


class TestWarmingAndStats:
    def test_install_code_goes_to_llc(self, hierarchy):
        hierarchy.install_code(0, 0x300)
        delay = hierarchy.fetch_block(0, 0x300)
        assert delay == hierarchy.llc_latency  # L1-I miss, LLC hit

    def test_mlp_occupancy(self, hierarchy):
        hierarchy.load(0, 1, 0x100, 0)
        hierarchy.load(0, 1, 0x10000, 0)
        assert hierarchy.mlp_occupancy(0, 1) == 2

    def test_reset_stats_keeps_contents(self, hierarchy):
        hierarchy.load(0, 1, 0x100, 0)
        hierarchy.reset_stats()
        assert hierarchy.l1d_misses == [0, 0]
        __, missed = hierarchy.load(0, 1, 0x100, 500)
        assert not missed


class TestLLCSharing:
    def test_partitioned_by_default(self):
        h = MemoryHierarchy(CoreConfig())
        assert h.llc[0] is not h.llc[1]

    def test_shared_llc_option(self):
        from repro.cpu.config import UncoreConfig

        config = replace(CoreConfig(), uncore=UncoreConfig(llc_partitioned=False))
        h = MemoryHierarchy(config)
        assert h.llc[0] is h.llc[1]
        assert h.llc[0].num_sets * h.llc[0].ways * 64 == 8 * 1024 * 1024

    def test_shared_llc_cross_thread_contention(self):
        from repro.cpu.config import UncoreConfig

        config = replace(CoreConfig(), uncore=UncoreConfig(llc_partitioned=False))
        h = MemoryHierarchy(config)
        h.install_data(0, 0x4000)
        # Thread 1 streams far past 8 MB, evicting thread 0's LLC line.
        for i in range(8 * 1024 * 1024 // 64 + 2048):
            h.install_data(1, 0x100000 + 64 * i)
        latency, missed = h.load(0, 1, 0x4000, 0)
        assert missed
        assert latency > h.l1_hit_latency + h.llc_latency  # memory, not LLC
