"""Tests for the metrics registry (repro.obs.metrics)."""

import io
import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullInstrument,
    TimeSeries,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_moves_both_ways(self):
        g = Gauge("x")
        g.set(3.0)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        for v in (0.5, 0.9, 5.0, 100.0):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.4 / 4)

    def test_boundary_is_inclusive(self):
        h = Histogram("lat", bounds=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", bounds=(5.0, 1.0))

    def test_empty_snapshot(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestTimeSeries:
    def test_appends_in_order(self):
        s = TimeSeries("uipc")
        s.append(0, 1.0)
        s.append(1, 2.0)
        assert s.values() == [1.0, 2.0]
        assert s.last == 2.0
        assert s.mean() == 1.5

    def test_sliding_window(self):
        s = TimeSeries("uipc", max_points=3)
        for i in range(5):
            s.append(i, float(i))
        assert s.values() == [2.0, 3.0, 4.0]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TimeSeries("x", max_points=0)


class TestRegistry:
    def test_same_name_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert len(r) == 1

    def test_type_mismatch_rejected(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError, match="is a Counter"):
            r.gauge("a")

    def test_disabled_registry_hands_out_shared_null(self):
        r = MetricsRegistry(enabled=False)
        null = r.counter("a")
        assert isinstance(null, NullInstrument)
        assert r.series("b") is null
        null.inc()
        null.append(0, 1.0)  # all mutators are no-ops
        assert len(r) == 0

    def test_collect_sorted(self):
        r = MetricsRegistry()
        r.counter("z.late").inc()
        r.gauge("a.early").set(2.0)
        snap = r.collect()
        assert list(snap) == ["a.early", "z.late"]
        assert snap["z.late"] == {"type": "counter", "value": 1}

    def test_write_jsonl(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.series("s").append(0, 1.0)
        buf = io.StringIO()
        assert r.write_jsonl(buf) == 2
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert {line["metric"] for line in lines} == {"c", "s"}

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.reset()
        assert len(r) == 0
        assert r.counter("c").value == 0


class TestDefaultRegistry:
    def test_default_is_disabled_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_install_and_restore(self):
        mine = MetricsRegistry()
        try:
            assert set_registry(mine) is mine
            assert get_registry() is mine
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY
