"""Docstring-table drift tests: keep prose tables in sync with the code.

Two classes of documentation are load-bearing enough to test:

* numpy-style ``Attributes`` tables on frozen config dataclasses
  (:class:`~repro.core.monitor.MonitorConfig` and friends) — every
  dataclass field must appear in the table and vice versa, so adding a
  field without documenting it (or documenting a field that was removed)
  fails here instead of silently drifting;
* the ``fleet.*`` instrument table in :mod:`repro.obs.fleet`'s module
  docstring — every metric the publishers emit must match a documented
  row, and every concrete documented row must actually be emitted;
* the fidelity-tier table in ``docs/API.md`` — every tier in the
  :func:`~repro.experiments.common.register_fidelity` registry must have
  a documented row and vice versa, and the unknown-tier error must list
  every registered name (that error *is* documentation).
"""

from __future__ import annotations

import dataclasses
import inspect
import re
from pathlib import Path
from types import SimpleNamespace

import pytest

import repro.obs.fleet as obs_fleet
from repro.core.monitor import MonitorConfig, QueueLengthMonitorConfig
from repro.obs.metrics import MetricsRegistry
from repro.scenarios import (
    FlashCrowd,
    Generations,
    Incident,
    Migration,
    ScenarioSpec,
    Stragglers,
)

DOCUMENTED_DATACLASSES = [
    MonitorConfig,
    QueueLengthMonitorConfig,
    Stragglers,
    Generations,
    Migration,
    Incident,
    FlashCrowd,
    ScenarioSpec,
]


def attributes_table_names(cls) -> list[str]:
    """Parse the attribute names out of a numpy-style Attributes table.

    Combined rows like ``a / b / c:`` (used when several fields share one
    description) contribute each name separately, in order.
    """
    doc = inspect.getdoc(cls)
    assert doc is not None, f"{cls.__name__} has no docstring"
    lines = doc.splitlines()
    names: list[str] = []
    in_table = False
    for i, line in enumerate(lines):
        if line.strip() == "Attributes":
            assert set(lines[i + 1].strip()) == {"-"}, (
                f"{cls.__name__}: Attributes heading missing its underline"
            )
            in_table = True
            continue
        if not in_table or set(line.strip()) == {"-"}:
            continue
        if line and not line.startswith(" ") and line.endswith(":"):
            for part in line[:-1].split("/"):
                names.append(part.strip())
        elif line and not line.startswith(" "):
            in_table = False  # a new unindented section ends the table
    assert names, f"{cls.__name__} has no Attributes table"
    return names


@pytest.mark.parametrize(
    "cls", DOCUMENTED_DATACLASSES, ids=lambda cls: cls.__name__
)
def test_attributes_table_matches_fields(cls):
    documented = attributes_table_names(cls)
    fields = [f.name for f in dataclasses.fields(cls)]
    assert documented == fields, (
        f"{cls.__name__}: Attributes table {documented} has drifted from "
        f"the dataclass fields {fields}; update the docstring"
    )


# ---------------------------------------------------------------------------
# repro.obs.fleet instrument table
# ---------------------------------------------------------------------------


def documented_fleet_patterns() -> list[re.Pattern]:
    """Extract the instrument names from the module docstring's rst table.

    ``{a,b,c}`` alternation and ``<placeholder>`` wildcards both expand
    into the returned regex patterns.
    """
    doc = inspect.getdoc(obs_fleet)
    rows = [
        row
        for row in re.findall(r"^``([^`]+)``", doc, flags=re.MULTILINE)
        if row.startswith("fleet.")
    ]
    assert rows, "repro.obs.fleet docstring lost its instrument table"
    patterns = []
    for row in rows:
        escaped = re.escape(row)
        escaped = re.sub(
            r"\\{([^}]+)\\}",
            lambda m: "(?:" + m.group(1).replace(",", "|") + ")",
            escaped,
        )
        escaped = re.sub(r"<[a-z_]+>", r"[A-Za-z0-9_.-]+", escaped)
        patterns.append(re.compile(f"^{escaped}$"))
    return patterns


def fake_window_record() -> dict:
    return {
        "window": 3,
        "hour": 0.5,
        "servers": 8,
        "cluster_load": 0.6,
        "violations": 1,
        "throttled": 2,
        "mean_tail_ms": 41.0,
        "mode_baseline": 5,
        "mode_b": 2,
        "mode_q": 1,
        "placement": {"zeusmp": 6, "gemsFDTD": 2},
        "scenario": {
            "name": "stragglers",
            "active": ["stragglers"],
            "load_factor": 1.0,
            "affected": 1,
        },
    }


def fake_timeline() -> SimpleNamespace:
    return SimpleNamespace(
        total_windows=16,
        n_windows=2,
        violation_rate=0.125,
        mode_occupancy=(0.5, 0.25, 0.25),
        throttled_fraction=0.0625,
        mean_tail_ms=40.0,
        straggler_p99_violations=2.0,
        server_violations=[0, 1, 0, 2, 0, 0, 1, 0],
        hours=[0.0, 0.5],
        violations=[1, 1],
        throttled=[0, 2],
    )


def test_fleet_instrument_table_matches_publishers():
    registry = MetricsRegistry(enabled=True)
    obs_fleet.publish_fleet_window(registry, fake_window_record())
    obs_fleet.publish_fleet_metrics(registry, fake_timeline())
    published = set(registry.collect())
    patterns = documented_fleet_patterns()

    undocumented = sorted(
        name
        for name in published
        if not any(p.match(name) for p in patterns)
    )
    assert not undocumented, (
        f"published fleet metrics missing from the repro.obs.fleet "
        f"docstring table: {undocumented}"
    )

    unpublished = [
        p.pattern
        for p in patterns
        if not any(p.match(name) for name in published)
    ]
    assert not unpublished, (
        f"documented fleet instruments never published by either "
        f"publisher (stale table rows?): {unpublished}"
    )


# ---------------------------------------------------------------------------
# docs/API.md fidelity-tier table vs the registry
# ---------------------------------------------------------------------------

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"


def documented_fidelity_tiers() -> list[str]:
    """Parse the tier names out of the ``### Fidelity tiers`` table."""
    text = API_MD.read_text()
    match = re.search(r"### Fidelity tiers\n(.*?)\n#", text, flags=re.DOTALL)
    assert match, "docs/API.md lost its '### Fidelity tiers' section"
    rows = re.findall(r"^\| `([a-z0-9_-]+)` \|", match.group(1), re.MULTILINE)
    assert rows, "the Fidelity tiers section lost its table"
    return rows


def test_fidelity_table_matches_registry():
    from repro.experiments.common import fidelity_names

    documented = documented_fidelity_tiers()
    assert sorted(documented) == sorted(fidelity_names()), (
        f"docs/API.md fidelity-tier table {documented} has drifted from "
        f"the registry {fidelity_names()}; update the table"
    )


def test_unknown_tier_error_lists_registry():
    from repro.experiments.common import Fidelity, fidelity_names

    with pytest.raises(ValueError, match="fidelity") as excinfo:
        Fidelity.resolve("no-such-tier")
    message = str(excinfo.value)
    for name in fidelity_names():
        assert name in message, (
            f"registered tier {name!r} missing from the unknown-fidelity "
            f"error message: {message}"
        )
