"""Tests for the adversarial scenario suite (`repro.scenarios`).

The load-bearing guarantees (seeded property tests, no hypothesis):

* a null or zero-magnitude scenario is **bit-identical** to an
  unperturbed engine (the skip path never builds a sampler);
* servers a perturbation does not touch keep bit-identical trajectories
  (the ×1.0 multiplier preserves IEEE values exactly);
* perturbation streams are pure functions of ``(seed, window)``:
  shard-slicing and checkpoint/resume never change outcomes;
* scenario specs are strict, hashable, round-trippable, and part of the
  content-addressed shard-job key (the CRN-paired tuning cache).
"""

import dataclasses

import numpy as np
import pytest

from repro.fleet import FleetEngine, FleetTimeline, fit_tail_surrogate
from repro.fleet.engine import FleetState
from repro.fleet.shard import FleetShardJob
from repro.scenarios import (
    SCENARIO_NAMES,
    FlashCrowd,
    Generations,
    Incident,
    Migration,
    ScenarioSampler,
    ScenarioSpec,
    Stragglers,
    as_scenario,
    get_scenario,
    scenario_from_dict,
)
from repro.workloads.registry import get_profile
from tests.test_fleet import TEST_GRID, fleet_config, performance_model

N_SERVERS = 32

#: A heavy always-on perturbation (every family repesented, no nulls).
STRESS = ScenarioSpec(
    name="stress",
    stragglers=Stragglers(fraction=0.25, slowdown=2.0),
    migration=Migration(start_hour=6.0, fraction=0.3, retain=0.2),
    incident=Incident(start_hour=2.0, duration_hours=8.0,
                      fraction=0.25, capacity_loss=0.5),
    flash_crowd=FlashCrowd(start_hour=12.0, duration_hours=6.0,
                           magnitude=1.5),
)


@pytest.fixture(scope="module")
def surrogate():
    engine = FleetEngine(
        get_profile("web_search"), performance_model(), fleet_config()
    )
    return fit_tail_surrogate(
        get_profile("web_search").qos, engine.perf_factors, TEST_GRID
    )


def make_engine(surrogate, scenario=None, **overrides):
    config = fleet_config(n_servers=overrides.pop("n_servers", N_SERVERS),
                          **overrides)
    return FleetEngine(
        get_profile("web_search"), performance_model(), config,
        surrogate=surrogate, scenario=scenario,
    )


def assert_timelines_identical(a: FleetTimeline, b: FleetTimeline):
    """Bitwise equality over every array, floats included."""
    assert a.n_servers == b.n_servers
    assert np.array_equal(a.hours, b.hours)
    assert np.array_equal(a.mode_counts, b.mode_counts)
    assert np.array_equal(a.violations, b.violations)
    assert np.array_equal(a.throttled, b.throttled)
    assert np.array_equal(a.tail_ms_sum, b.tail_ms_sum)
    assert np.array_equal(a.batch_uipc_sum, b.batch_uipc_sum)
    assert np.array_equal(a.server_violations, b.server_violations)
    assert np.array_equal(a.server_bmode_windows, b.server_bmode_windows)


class TestScenarioSpec:
    def test_suite_presets_round_trip(self):
        assert "calm" in SCENARIO_NAMES
        for name in SCENARIO_NAMES:
            spec = get_scenario(name)
            assert spec.name == name
            assert scenario_from_dict(spec.to_dict()) == spec

    def test_calm_is_null_black_friday_is_not(self):
        assert get_scenario("calm").is_null
        bf = get_scenario("black_friday")
        assert not bf.is_null
        assert bf.components == ("stragglers", "incident", "flash_crowd")

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("tsunami")

    def test_as_scenario_resolution(self):
        assert as_scenario(None) is None
        spec = get_scenario("stragglers")
        assert as_scenario(spec) is spec
        assert as_scenario("stragglers") == spec
        assert as_scenario(spec.to_dict()) == spec
        with pytest.raises(TypeError, match="scenario must be"):
            as_scenario(42)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            scenario_from_dict({"name": "x", "earthquake": {}})
        with pytest.raises(ValueError, match="unknown stragglers fields"):
            scenario_from_dict(
                {"name": "x", "stragglers": {"fractoin": 0.1}}
            )

    def test_component_validation(self):
        with pytest.raises(ValueError):
            Stragglers(fraction=-0.1)
        with pytest.raises(ValueError):
            Stragglers(slowdown=0.5)
        with pytest.raises(ValueError):
            Generations(factors=())
        with pytest.raises(ValueError):
            Generations(factors=(1.0, 1.2), mix=(0.5,))
        with pytest.raises(ValueError):
            Migration(fraction=1.0)
        with pytest.raises(ValueError):
            Incident(duration_hours=0.0)
        with pytest.raises(ValueError):
            FlashCrowd(magnitude=0.0)
        with pytest.raises(TypeError, match="stragglers must be"):
            ScenarioSpec(stragglers=Incident())

    def test_zero_magnitude_components_are_null(self):
        assert Stragglers(fraction=0.0).is_null
        assert Stragglers(slowdown=1.0).is_null
        assert Generations(factors=(1.0, 1.0)).is_null
        assert Migration(retain=1.0).is_null
        assert Incident(capacity_loss=0.0).is_null
        assert FlashCrowd(magnitude=1.0).is_null
        spec = ScenarioSpec(name="zero", stragglers=Stragglers(fraction=0.0))
        assert spec.is_null and spec.components == ()

    def test_specs_are_hashable_and_repr_stable(self):
        spec = get_scenario("black_friday")
        assert hash(spec) == hash(get_scenario("black_friday"))
        assert eval(repr(spec), {
            "ScenarioSpec": ScenarioSpec, "Stragglers": Stragglers,
            "Incident": Incident, "FlashCrowd": FlashCrowd,
        }) == spec


class TestScenarioSampler:
    def make(self, spec=STRESS, seed=5, n=N_SERVERS):
        return ScenarioSampler(spec, n_servers=n, seed=seed)

    def test_deterministic_across_instances(self):
        a, b = self.make(), self.make()
        assert np.array_equal(a.tail_factors(), b.tail_factors())
        for window, hour in ((0, 0.0), (3, 6.0), (7, 14.0)):
            fa = a.load_factors(window, hour)
            fb = b.load_factors(window, hour)
            assert np.array_equal(fa, fb)

    def test_salt_decorrelates_masks(self):
        a = self.make()
        b = self.make(dataclasses.replace(STRESS, salt=1))
        assert not np.array_equal(a.tail_factors(), b.tail_factors())

    def test_untouched_servers_get_exactly_one(self):
        sampler = self.make()
        tail = sampler.tail_factors()
        assert ((tail == 1.0) | (tail == 2.0)).all()
        factors = sampler.load_factors(10, 3.0)  # incident only
        assert ((factors == 1.0) | (factors == 2.0)).all()

    def test_activation_windows(self):
        sampler = self.make()
        assert sampler.load_factors(0, 0.0) is None  # nothing load-active
        assert sampler.active_components(0.0) == ("stragglers",)
        assert "incident" in sampler.active_components(2.0)
        assert "incident" not in sampler.active_components(10.0)
        assert "migration" in sampler.active_components(23.0)  # no revert
        assert "flash_crowd" in sampler.active_components(12.0)
        assert "flash_crowd" not in sampler.active_components(18.0)

    def test_migration_conserves_balanced_load(self):
        sampler = self.make(ScenarioSpec(
            name="m", migration=Migration(start_hour=0.0, fraction=0.4,
                                          retain=0.25),
        ))
        factors = sampler.load_factors(0, 0.0)
        assert factors is not None
        assert np.isclose(factors.mean(), 1.0)

    def test_window_summary_counts_affected(self):
        sampler = self.make()
        tail = sampler.tail_factors()
        summary = sampler.window_summary(0.0, None, tail)
        assert summary["name"] == "stress"
        assert summary["active"] == ["stragglers"]
        assert summary["load_factor"] == 1.0
        assert summary["affected"] == int((tail != 1.0).sum())


class TestEngineBitIdentity:
    def test_null_scenario_is_bit_identical(self, surrogate):
        plain = make_engine(surrogate).run_day("web_search")
        calm = make_engine(
            surrogate, scenario=get_scenario("calm")
        ).run_day("web_search")
        assert_timelines_identical(plain, calm)

    def test_zero_magnitude_scenario_is_bit_identical(self, surrogate):
        plain = make_engine(surrogate).run_day("web_search")
        zero = make_engine(surrogate, scenario=ScenarioSpec(
            name="zero",
            stragglers=Stragglers(fraction=0.0),
            flash_crowd=FlashCrowd(magnitude=1.0),
        )).run_day("web_search")
        assert_timelines_identical(plain, zero)

    def test_perturbation_hurts_qos(self, surrogate):
        # Migration-style components can *relieve* pressure, so the
        # monotone check uses a purely hostile spec: half the fleet's
        # tails tripled, all day.
        hostile = ScenarioSpec(
            name="hostile", stragglers=Stragglers(fraction=0.5, slowdown=3.0)
        )
        plain = make_engine(surrogate).run_day("web_search")
        stressed = make_engine(surrogate, scenario=hostile).run_day(
            "web_search"
        )
        assert stressed.violation_rate > plain.violation_rate

    def test_window_record_carries_scenario_section(self, surrogate):
        record = make_engine(surrogate, scenario=STRESS).stepper(
            "web_search"
        ).step()
        assert record["scenario"]["name"] == "stress"
        assert record["scenario"]["active"] == ["stragglers"]
        plain_record = make_engine(surrogate).stepper("web_search").step()
        assert "scenario" not in plain_record

    def test_unaffected_servers_keep_exact_trajectories(self, surrogate):
        spec = ScenarioSpec(
            name="s", stragglers=Stragglers(fraction=0.3, slowdown=2.0)
        )
        config = fleet_config(n_servers=N_SERVERS)
        sampler = ScenarioSampler(
            spec, n_servers=N_SERVERS, seed=config.seed
        )
        untouched = sampler.tail_factors() == 1.0
        assert 0 < untouched.sum() < N_SERVERS
        plain = make_engine(surrogate).run_day("web_search")
        pert = make_engine(surrogate, scenario=spec).run_day("web_search")
        assert np.array_equal(
            plain.server_violations[untouched],
            pert.server_violations[untouched],
        )
        assert np.array_equal(
            plain.server_bmode_windows[untouched],
            pert.server_bmode_windows[untouched],
        )

    def test_shard_slice_invariance(self, surrogate):
        full = make_engine(surrogate, scenario=STRESS).run_day("web_search")
        mid = N_SERVERS // 2
        engine = make_engine(surrogate, scenario=STRESS)
        merged = FleetTimeline.merge([
            engine.run_day("web_search", server_range=(0, mid)),
            engine.run_day("web_search", server_range=(mid, N_SERVERS)),
        ])
        # Integer aggregates are exactly shard-invariant; float window
        # sums only to summation-order noise (the engine's own shard
        # contract).
        assert np.array_equal(merged.violations, full.violations)
        assert np.array_equal(merged.mode_counts, full.mode_counts)
        assert np.array_equal(merged.throttled, full.throttled)
        assert np.array_equal(
            merged.server_violations, full.server_violations
        )
        assert np.allclose(merged.tail_ms_sum, full.tail_ms_sum, rtol=1e-12)
        assert np.allclose(
            merged.batch_uipc_sum, full.batch_uipc_sum, rtol=1e-12
        )

    def test_checkpoint_resume_is_bit_identical(self, surrogate):
        baseline = make_engine(surrogate, scenario=STRESS).run_day(
            "web_search"
        )
        engine = make_engine(surrogate, scenario=STRESS)
        stepper = engine.stepper("web_search")
        for _ in range(5):
            stepper.step()
        values = stepper.state.to_values()
        resumed = engine.stepper(
            "web_search", state=FleetState.from_values(values)
        )
        while not resumed.state.done:
            resumed.step()
        assert_timelines_identical(baseline, resumed.state.timeline)


class TestShardJobScenario:
    def job(self, scenario=None):
        return FleetShardJob(
            profile_name="web_search",
            performance=performance_model(),
            config=fleet_config(n_servers=N_SERVERS),
            load="web_search",
            lo=0,
            hi=N_SERVERS,
            surrogate_values=None,
            scenario=scenario,
        )

    def test_scenario_is_part_of_the_key(self):
        plain = self.job()
        stressed = self.job(STRESS)
        assert plain.key != stressed.key
        assert stressed.key == self.job(STRESS).key
        salted = self.job(dataclasses.replace(STRESS, salt=3))
        assert salted.key != stressed.key
