"""Repository-consistency checks: docs, examples and registries agree."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


class TestDocsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE", "CITATION.cff",
        "docs/MODEL.md", "docs/API.md",
    ])
    def test_file_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert path.stat().st_size > 200, name


class TestReadmeReferences:
    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        for match in re.findall(r"examples/(\w+\.py)", readme):
            assert (ROOT / "examples" / match).exists(), match

    def test_all_examples_are_listed(self):
        readme = (ROOT / "README.md").read_text()
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, script.name

    def test_readme_mentions_paper_doi(self):
        assert "10.1109/HPCA.2019.00024" in (ROOT / "README.md").read_text()


class TestExperimentIndex:
    def test_design_lists_every_figure_bench(self):
        design = (ROOT / "DESIGN.md").read_text()
        for fig in ["fig01", "fig02", "fig03", "fig04", "fig05", "fig06",
                    "fig07", "fig09", "fig10", "fig11", "fig12", "fig13",
                    "fig14"]:
            assert fig in design, fig

    def test_benchmark_per_registered_figure(self):
        from repro.experiments.runner import EXPERIMENTS

        bench_sources = " ".join(
            path.read_text() for path in (ROOT / "benchmarks").glob("test_*.py")
        )
        for experiment_id, module in EXPERIMENTS.items():
            if experiment_id == "characterize":
                module_ref = "characterization"
            else:
                module_ref = module.rsplit(".", 1)[1]
            assert module_ref.split("_")[0] in bench_sources or \
                module_ref in bench_sources, experiment_id

    def test_experiments_md_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for artifact in ["Figure 1", "Figure 2", "Figure 3", "Figure 6",
                         "Figure 7", "Figure 9", "Figure 10", "Figure 11",
                         "Figure 12", "Figure 13", "Figure 14",
                         "Table I", "Table II", "Table III"]:
            assert artifact in text, artifact


class TestExamplesHaveDocstrings:
    def test_every_example_documented(self):
        for script in (ROOT / "examples").glob("*.py"):
            text = script.read_text()
            assert text.lstrip().startswith(("#!", '"""')), script.name
            assert '"""' in text, script.name
            assert "Usage" in text, script.name
