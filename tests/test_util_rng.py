"""Tests for the deterministic RNG discipline."""

import numpy as np
import pytest

from repro.util.rng import SeedSequenceFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_path_not_concatenation(self):
        # ("ab",) and ("a", "b") must differ: labels are separated.
        assert derive_seed(0, "ab") != derive_seed(0, "a", "b")

    def test_integer_labels(self):
        assert derive_seed(0, 5) == derive_seed(0, 5)
        assert derive_seed(0, 5) != derive_seed(0, 6)

    def test_range(self):
        for labels in [(), ("x",), ("x", 1, "y")]:
            seed = derive_seed(123, *labels)
            assert 0 <= seed < 2**63

    def test_no_labels(self):
        assert derive_seed(9) == derive_seed(9)


class TestSeedSequenceFactory:
    def test_generator_reproducible(self):
        f = SeedSequenceFactory(3)
        a = f.generator("trace").random(8)
        b = f.generator("trace").random(8)
        assert np.array_equal(a, b)

    def test_generator_independent_labels(self):
        f = SeedSequenceFactory(3)
        a = f.generator("x").random(8)
        b = f.generator("y").random(8)
        assert not np.array_equal(a, b)

    def test_child_factory(self):
        f = SeedSequenceFactory(3)
        child = f.child("sub")
        assert child.root_seed == derive_seed(3, "sub")
        assert np.array_equal(
            child.generator("g").random(4),
            SeedSequenceFactory(derive_seed(3, "sub")).generator("g").random(4),
        )

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            SeedSequenceFactory(-1)

    def test_repr(self):
        assert "root_seed=5" in repr(SeedSequenceFactory(5))
