"""Tests for the Stretch partition schemes (paper §VI-A configurations)."""

import pytest

from repro.core.partitioning import (
    B_MODES,
    BASELINE,
    DEFAULT_B_MODE,
    DEFAULT_Q_MODE,
    Q_MODES,
    PartitionScheme,
    scheme_by_name,
)
from repro.cpu.config import CoreConfig


class TestScheme:
    def test_name_notation(self):
        assert PartitionScheme(56, 136).name == "56-136"

    def test_baseline(self):
        assert BASELINE.name == "96-96"
        assert BASELINE.is_baseline

    def test_positive_entries(self):
        with pytest.raises(ValueError):
            PartitionScheme(0, 192)

    def test_skew_toward_batch(self):
        assert PartitionScheme(56, 136).skew_toward_batch == 40
        assert BASELINE.skew_toward_batch == 0
        assert PartitionScheme(136, 56).skew_toward_batch == -40

    def test_apply_sets_rob_limits(self):
        config = DEFAULT_B_MODE.apply(CoreConfig())
        assert config.rob_limits == (56, 136)

    def test_apply_scales_lsq(self):
        config = DEFAULT_B_MODE.apply(CoreConfig())
        assert sum(config.lsq_limits) <= config.lsq_entries
        assert config.lsq_limits[1] > config.lsq_limits[0]

    def test_apply_overflow(self):
        with pytest.raises(ValueError):
            PartitionScheme(100, 100).apply(CoreConfig())

    def test_limits_helper(self):
        rob, lsq = DEFAULT_B_MODE.limits(CoreConfig())
        assert rob == (56, 136)
        assert lsq == CoreConfig().with_rob_partition(56, 136).lsq_limits


class TestPaperConfigurations:
    def test_b_mode_skews_match_figure9(self):
        assert [s.name for s in B_MODES] == [
            "64-128", "56-136", "48-144", "40-152", "32-160"
        ]

    def test_q_mode_skews_match_figure9(self):
        assert [s.name for s in Q_MODES] == [
            "128-64", "136-56", "144-48", "152-40", "160-32"
        ]

    def test_defaults_are_papers_headline_modes(self):
        assert DEFAULT_B_MODE.name == "56-136"
        assert DEFAULT_Q_MODE.name == "136-56"

    def test_all_schemes_fill_the_rob(self):
        for scheme in (*B_MODES, *Q_MODES, BASELINE):
            assert scheme.ls_entries + scheme.batch_entries == 192

    def test_q_modes_mirror_b_modes(self):
        for b, q in zip(B_MODES, Q_MODES):
            assert (b.ls_entries, b.batch_entries) == (q.batch_entries, q.ls_entries)


class TestParsing:
    def test_round_trip(self):
        assert scheme_by_name("56-136") == PartitionScheme(56, 136)

    def test_bad_format(self):
        with pytest.raises(ValueError):
            scheme_by_name("56x136")
        with pytest.raises(ValueError):
            scheme_by_name("banana")
