"""Tests for the µop model constants."""

from repro.cpu.isa import EXEC_LATENCY, FU_CLASS, OpClass


class TestOpClass:
    def test_six_classes(self):
        assert len(OpClass) == 6

    def test_values_are_compact(self):
        assert sorted(int(op) for op in OpClass) == list(range(6))


class TestExecLatency:
    def test_all_classes_covered(self):
        assert set(EXEC_LATENCY) == set(OpClass)

    def test_loads_defer_to_cache_model(self):
        assert EXEC_LATENCY[OpClass.LOAD] == 0

    def test_simple_alu_single_cycle(self):
        assert EXEC_LATENCY[OpClass.INT_ALU] == 1

    def test_long_ops_slower_than_alu(self):
        assert EXEC_LATENCY[OpClass.INT_MUL] > EXEC_LATENCY[OpClass.INT_ALU]
        assert EXEC_LATENCY[OpClass.FP] > EXEC_LATENCY[OpClass.INT_ALU]


class TestFUClasses:
    def test_all_classes_covered(self):
        assert set(FU_CLASS) == set(OpClass)

    def test_memory_ops_share_lsu(self):
        assert FU_CLASS[OpClass.LOAD] == FU_CLASS[OpClass.STORE] == "lsu"

    def test_known_pools(self):
        assert set(FU_CLASS.values()) == {"int_alu", "int_mul", "fpu", "lsu"}
