"""Public-API audit: every ``repro.*`` ``__all__`` vs the docs export index.

The "Export index" appendix in ``docs/API.md`` is a machine-readable
snapshot of every module's ``__all__``.  This test fails in BOTH
directions — a name exported but undocumented, or documented but gone —
so the docs and the code surface cannot drift apart silently.

Regenerate the appendix after an intentional surface change:

    PYTHONPATH=src python tests/test_public_api.py --regen
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"
INDEX_RE = re.compile(
    r"^## Export index.*?```text\n(.*?)```", re.DOTALL | re.MULTILINE
)


def actual_exports() -> dict[str, list[str]]:
    """Import every ``repro`` module and collect its ``__all__``."""
    import repro

    names = ["repro"]
    names += [m.name for m in pkgutil.walk_packages(repro.__path__, "repro.")]
    out = {}
    for name in sorted(names):
        module = importlib.import_module(name)
        out[name] = list(getattr(module, "__all__", []))
    return out


def documented_exports() -> dict[str, list[str]]:
    """Parse the Export index appendix out of docs/API.md."""
    match = INDEX_RE.search(API_MD.read_text())
    assert match, "docs/API.md is missing the '## Export index' appendix"
    out = {}
    for line in match.group(1).splitlines():
        line = line.strip()
        if not line:
            continue
        module, _, exports = line.partition(":")
        out[module.strip()] = exports.split()
    return out


def render_index(exports: dict[str, list[str]]) -> str:
    return "".join(
        f"{module}: {' '.join(names)}\n"
        for module, names in sorted(exports.items())
    )


class TestExportIndex:
    def test_every_module_declares_all(self):
        for module, exports in actual_exports().items():
            assert exports, f"{module} has no (or an empty) __all__"

    def test_all_names_resolve_and_are_unique(self):
        for module_name, exports in actual_exports().items():
            module = importlib.import_module(module_name)
            missing = [n for n in exports if not hasattr(module, n)]
            assert not missing, f"{module_name}.__all__ lists {missing}"
            dupes = {n for n in exports if exports.count(n) > 1}
            assert not dupes, f"{module_name}.__all__ repeats {dupes}"

    def test_docs_match_code(self):
        actual = actual_exports()
        documented = documented_exports()
        hint = (
            "docs/API.md Export index is stale; regenerate with "
            "`PYTHONPATH=src python tests/test_public_api.py --regen`"
        )
        assert sorted(documented) == sorted(actual), (
            f"module list drift: undocumented={sorted(set(actual) - set(documented))} "
            f"vanished={sorted(set(documented) - set(actual))}\n{hint}"
        )
        for module in actual:
            assert sorted(documented[module]) == sorted(actual[module]), (
                f"{module}: docs say {sorted(documented[module])}, "
                f"code says {sorted(actual[module])}\n{hint}"
            )


class TestStarImport:
    def test_star_import_matches_all(self):
        import repro

        namespace: dict = {}
        exec("from repro import *", namespace)
        imported = {n for n in namespace if not n.startswith("_")}
        assert imported == set(repro.__all__)

    def test_facade_verbs_front_and_centre(self):
        import repro

        for verb in ("simulate", "measure", "run_day", "run_fleet"):
            assert verb in repro.__all__


def _regen() -> None:
    text = API_MD.read_text()
    index = render_index(actual_exports())
    new, n = INDEX_RE.subn(
        lambda m: m.group(0).replace(m.group(1), index), text, count=1
    )
    assert n == 1, "could not locate the Export index appendix"
    API_MD.write_text(new)
    print(f"rewrote Export index ({len(actual_exports())} modules)")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        sys.exit(pytest.main([__file__, "-q"]))
