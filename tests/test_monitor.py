"""Tests for the CPI²-extended Stretch software monitor."""

import pytest

from repro.core.monitor import MonitorConfig, StretchMonitor
from repro.core.stretch import StretchMode
from repro.workloads.profiles import QoSSpec

QOS = QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=5.0)


def make_monitor(q_mode=True, **config) -> StretchMonitor:
    return StretchMonitor(QOS, MonitorConfig(**config), q_mode_available=q_mode)


class TestConfigValidation:
    def test_engage_fraction_bounds(self):
        with pytest.raises(ValueError):
            MonitorConfig(engage_fraction=1.5)

    def test_window_counts_positive(self):
        with pytest.raises(ValueError):
            MonitorConfig(engage_windows=0)


class TestEngagement:
    def test_starts_in_baseline(self):
        assert make_monitor().mode is StretchMode.BASELINE

    def test_engages_b_mode_after_streak(self):
        m = make_monitor(engage_windows=3)
        for _ in range(2):
            assert m.observe_window(20.0).mode is StretchMode.BASELINE
        assert m.observe_window(20.0).mode is StretchMode.B_MODE

    def test_streak_must_be_consecutive(self):
        m = make_monitor(engage_windows=3)
        m.observe_window(20.0)
        m.observe_window(20.0)
        m.observe_window(85.0)  # compliant but no slack: resets the streak
        assert m.observe_window(20.0).mode is StretchMode.BASELINE

    def test_no_engagement_without_slack(self):
        m = make_monitor(engage_windows=2)
        for _ in range(10):
            decision = m.observe_window(90.0)  # below target, above 75%
        assert decision.mode is not StretchMode.B_MODE

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_monitor().observe_window(-1.0)


class TestViolationResponse:
    def engaged(self, **kwargs) -> StretchMonitor:
        m = make_monitor(**kwargs)
        for _ in range(m.config.engage_windows):
            m.observe_window(10.0)
        assert m.mode is StretchMode.B_MODE
        return m

    def test_violation_disengages_b_mode(self):
        m = self.engaged()
        decision = m.observe_window(150.0)
        assert decision.mode is StretchMode.Q_MODE  # Q provisioned

    def test_violation_without_q_mode(self):
        m = self.engaged(q_mode=False)
        decision = m.observe_window(150.0)
        assert decision.mode is StretchMode.BASELINE

    def test_persistent_violation_throttles(self):
        m = self.engaged(violation_windows_to_throttle=2)
        m.observe_window(150.0)  # leaves B-mode
        decision = m.observe_window(150.0)
        assert decision.throttle_corunner
        assert m.throttle_orders == 1

    def test_throttle_lasts_configured_windows(self):
        m = self.engaged(violation_windows_to_throttle=1, throttle_windows=3)
        m.observe_window(150.0)  # first response: leave B-mode
        decision = m.observe_window(150.0)  # persists -> throttle
        assert decision.throttle_corunner
        states = [m.observe_window(10.0).throttle_corunner for _ in range(3)]
        assert states == [True, True, False]

    def test_violations_counted(self):
        m = make_monitor()
        m.observe_window(150.0)
        m.observe_window(150.0)
        assert m.violations == 2


class TestRecovery:
    def test_q_mode_relaxes_to_baseline(self):
        m = make_monitor()
        m.observe_window(150.0)  # -> Q-mode
        assert m.mode is StretchMode.Q_MODE
        decision = m.observe_window(85.0)  # compliant, no slack
        assert decision.mode is StretchMode.BASELINE

    def test_full_cycle_back_to_b_mode(self):
        m = make_monitor(engage_windows=2)
        m.observe_window(150.0)  # violation
        for _ in range(2):
            decision = m.observe_window(10.0)
        assert decision.mode is StretchMode.B_MODE

    def test_b_mode_steps_down_when_slack_shrinks(self):
        m = make_monitor(engage_windows=1)
        m.observe_window(10.0)
        assert m.mode is StretchMode.B_MODE
        decision = m.observe_window(85.0)  # compliant but tight
        assert decision.mode is StretchMode.BASELINE

    def test_windows_observed_counter(self):
        m = make_monitor()
        for _ in range(5):
            m.observe_window(10.0)
        assert m.windows_observed == 5
