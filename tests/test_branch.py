"""Tests for the hybrid branch predictor and BTB."""

import numpy as np
import pytest

from repro.cpu.branch import HybridBranchPredictor
from repro.cpu.config import BranchPredictorConfig


def make_predictor(private=False) -> HybridBranchPredictor:
    return HybridBranchPredictor(BranchPredictorConfig(), private=private)


class TestDirectionPrediction:
    def test_learns_always_taken(self):
        p = make_predictor()
        pc, target = 0x1000, 0x2000
        for _ in range(8):
            p.predict_and_update(0, pc, True, target)
        outcome = p.predict_and_update(0, pc, True, target)
        assert outcome.direction_correct

    def test_learns_never_taken(self):
        p = make_predictor()
        pc = 0x1000
        for _ in range(8):
            p.predict_and_update(0, pc, False, 0)
        assert p.predict_and_update(0, pc, False, 0).direction_correct

    def test_biased_branch_accuracy(self):
        """A 90%-taken branch should be predicted with ~90% accuracy."""
        rng = np.random.default_rng(0)
        p = make_predictor()
        pc, target = 0x4000, 0x8000
        correct = total = 0
        for k in range(2000):
            taken = bool(rng.random() < 0.9)
            outcome = p.predict_and_update(0, pc, taken, target)
            if k > 100:
                total += 1
                correct += outcome.direction_correct
        assert correct / total == pytest.approx(0.9, abs=0.05)

    def test_misprediction_rate_tracks(self):
        p = make_predictor()
        for _ in range(10):
            p.predict_and_update(0, 0x100, True, 0x200)
        assert p.lookups[0] == 10
        assert 0.0 <= p.misprediction_rate(0) <= 1.0

    def test_misprediction_rate_empty(self):
        assert make_predictor().misprediction_rate(0) == 0.0


class TestBTB:
    def test_learns_static_target(self):
        p = make_predictor()
        pc, target = 0x3000, 0x9000
        p.predict_and_update(0, pc, True, target)  # first: BTB cold
        outcome = p.predict_and_update(0, pc, True, target)
        assert outcome.target_correct

    def test_cold_btb_misses(self):
        p = make_predictor()
        outcome = p.predict_and_update(0, 0x3000, True, 0x9000)
        assert not outcome.target_correct
        assert outcome.mispredicted

    def test_not_taken_needs_no_target(self):
        p = make_predictor()
        outcome = p.predict_and_update(0, 0x3000, False, 0x9000)
        assert outcome.target_correct

    def test_aliasing_eviction(self):
        """Two branches mapping to the same BTB set evict each other."""
        config = BranchPredictorConfig()
        p = HybridBranchPredictor(config)
        pc_a = 0x1000
        pc_b = pc_a + config.btb_entries * 4  # same index, different tag
        for _ in range(3):
            p.predict_and_update(0, pc_a, True, 0xA)
        p.predict_and_update(0, pc_b, True, 0xB)
        outcome = p.predict_and_update(0, pc_a, True, 0xA)
        assert not outcome.target_correct


class TestSharing:
    def test_shared_tables_alias_across_threads(self):
        """With shared tables, thread 1 training perturbs thread 0 state."""
        shared = make_predictor(private=False)
        pc = 0x5000
        for _ in range(8):
            shared.predict_and_update(0, pc, True, 0x6000)
        # Thread 1 hammers the same pc with the opposite direction.
        for _ in range(8):
            shared.predict_and_update(1, pc, False, 0)
        outcome = shared.predict_and_update(0, pc, True, 0x6000)
        assert not outcome.direction_correct

    def test_private_tables_isolate_threads(self):
        private = make_predictor(private=True)
        pc = 0x5000
        for _ in range(8):
            private.predict_and_update(0, pc, True, 0x6000)
        for _ in range(8):
            private.predict_and_update(1, pc, False, 0)
        outcome = private.predict_and_update(0, pc, True, 0x6000)
        assert outcome.direction_correct

    def test_history_always_private(self):
        p = make_predictor()
        assert len(p._history) == 2


class TestInstall:
    def test_install_warms_direction_and_target(self):
        p = make_predictor()
        pc, target = 0x7000, 0x7777
        p.install(0, pc, bias_taken=True, target=target)
        outcome = p.predict_and_update(0, pc, True, target)
        assert outcome.direction_correct and outcome.target_correct

    def test_install_not_taken(self):
        p = make_predictor()
        p.install(0, 0x7000, bias_taken=False, target=0)
        assert p.predict_and_update(0, 0x7000, False, 0).direction_correct


class TestStats:
    def test_reset_keeps_tables(self):
        p = make_predictor()
        pc, target = 0x100, 0x200
        for _ in range(8):
            p.predict_and_update(0, pc, True, target)
        p.reset_stats()
        assert p.lookups[0] == 0
        assert p.predict_and_update(0, pc, True, target).direction_correct
