"""Property-based tests on SMT-core invariants.

Random small workload pairs are simulated end-to-end; whatever the inputs,
the core must terminate, respect partition limits, and report consistent
statistics.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.config import CoreConfig
from repro.cpu.smt_core import SMTCore
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile
from repro.workloads.spec2006 import SPEC2006_NAMES

workload_names = st.sampled_from(SPEC2006_NAMES)
rob_splits = st.sampled_from([(96, 96), (56, 136), (136, 56), (32, 160), (160, 32)])


class TestCoreInvariants:
    @given(workload_names, workload_names, rob_splits, st.integers(0, 10))
    @settings(max_examples=12, deadline=None)
    def test_pair_simulation_invariants(self, name0, name1, split, seed):
        config = CoreConfig().with_rob_partition(*split)
        traces = (
            generate_trace(get_profile(name0), 3000, seed=seed),
            generate_trace(get_profile(name1), 3000, seed=seed + 1),
        )
        core = SMTCore(config, traces)
        result = core.run(400, warmup_instructions=200, require_all_threads=True)

        assert result.cycles > 0
        for t, thread in enumerate(result.threads):
            assert thread.instructions >= 400
            assert 0.0 < thread.uipc <= config.width
            assert core.rob.peak_usage[t] <= split[t]
            assert thread.branch_mispredicts <= thread.branches
            assert thread.l1d_misses <= thread.loads + thread.stores

    @given(workload_names, st.integers(0, 10),
           st.sampled_from([16, 48, 96, 144, 192]))
    @settings(max_examples=12, deadline=None)
    def test_solo_simulation_invariants(self, name, seed, rob):
        config = CoreConfig().single_thread(rob)
        trace = generate_trace(get_profile(name), 3000, seed=seed)
        core = SMTCore(config, (trace,))
        result = core.run(400, warmup_instructions=200)
        thread = result.threads[0]
        assert thread.instructions >= 400
        assert core.rob.peak_usage[0] <= rob
        assert sum(thread.mlp_cycles) >= result.cycles  # histogram covers run

    @given(workload_names, workload_names)
    @settings(max_examples=8, deadline=None)
    def test_reconfiguration_preserves_invariants(self, name0, name1):
        config = CoreConfig()
        traces = (
            generate_trace(get_profile(name0), 3000, seed=0),
            generate_trace(get_profile(name1), 3000, seed=1),
        )
        core = SMTCore(config, traces)
        core.run(200, require_all_threads=True)
        core.set_partitions((56, 136), (18, 45))
        assert core.rob.total_usage == 0
        result = core.run(200, require_all_threads=True)
        assert core.rob.peak_usage[0] <= 56
        assert core.rob.peak_usage[1] <= 136
        assert all(t.instructions >= 200 for t in result.threads)
