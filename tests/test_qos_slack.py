"""Tests for the performance-slack analysis (Figure 2 machinery)."""

import pytest

from repro.qos.queueing import ServiceSimulator
from repro.qos.slack import DutyCycleModulator, required_performance, slack_curve
from repro.workloads.profiles import QoSSpec
from repro.workloads.registry import get_profile

QOS = QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=8.0, service_cv=1.0)


class TestDutyCycleModulator:
    def test_full_duty_full_performance(self):
        assert DutyCycleModulator().performance(1.0) == 1.0

    def test_proportional_minus_overhead(self):
        m = DutyCycleModulator(switch_overhead=0.02)
        assert m.performance(0.5) == pytest.approx(0.49)

    def test_inverse(self):
        m = DutyCycleModulator(switch_overhead=0.02)
        duty = m.duty_for_performance(0.49)
        assert m.performance(duty) == pytest.approx(0.49)

    def test_inverse_near_one(self):
        m = DutyCycleModulator(switch_overhead=0.02)
        assert m.duty_for_performance(0.99) == 1.0

    def test_bounds(self):
        m = DutyCycleModulator()
        with pytest.raises(ValueError):
            m.performance(0.0)
        with pytest.raises(ValueError):
            m.duty_for_performance(1.5)

    def test_overhead_bounds(self):
        with pytest.raises(ValueError):
            DutyCycleModulator(switch_overhead=0.9)


class TestRequiredPerformance:
    @pytest.fixture(scope="class")
    def service(self):
        return ServiceSimulator(QOS, n_workers=8, seed=1)

    def test_monotone_in_load(self, service):
        low = required_performance(service, 0.2, n_requests=5000)
        high = required_performance(service, 0.8, n_requests=5000)
        assert high >= low

    def test_result_meets_qos(self, service):
        load = 0.5
        required = required_performance(service, load, n_requests=5000)
        peak = service.peak_load(n_requests=5000)
        stats = service.run(peak * load, required, 5000)
        assert service.meets_qos(stats)

    def test_low_load_leaves_slack(self, service):
        required = required_performance(service, 0.1, n_requests=5000)
        assert required < 0.6

    def test_bad_load(self, service):
        with pytest.raises(ValueError):
            required_performance(service, 0.0)


class TestSlackCurve:
    def test_returns_requested_points(self):
        curve = slack_curve(get_profile("web_search"), [0.2, 0.5], n_requests=4000)
        assert [load for load, __ in curve] == [0.2, 0.5]
        assert all(0.0 < req <= 1.0 for __, req in curve)

    def test_batch_workload_rejected(self):
        with pytest.raises(ValueError):
            slack_curve(get_profile("zeusmp"), [0.5])
