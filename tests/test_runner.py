"""Tests for the CLI experiment runner."""

import pytest

from repro.experiments.common import Fidelity
from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"tables", "fig01", "fig02", "fig03", "fig04", "fig05",
                    "fig06", "fig07", "fig09", "fig10", "fig11", "fig12",
                    "fig13", "fig14", "ext_two_services", "ext_sensitivity",
                    "ext_adaptive", "ext_energy", "characterize"}
        assert set(EXPERIMENTS) == expected

    def test_modules_importable_with_run(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert callable(module.run)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99", Fidelity.quick())


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "fig14" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig01" in capsys.readouterr().out

    def test_runs_light_experiment(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_dispatch(self):
        result = run_experiment("tables", Fidelity.quick())
        assert "Table I" in result.format()


class TestJsonExport:
    def test_result_to_jsonable_dataclass(self):
        import dataclasses
        import enum

        from repro.experiments.runner import result_to_jsonable

        class Color(enum.Enum):
            RED = "red"

        @dataclasses.dataclass
        class Inner:
            x: float

        @dataclasses.dataclass
        class Outer:
            name: str
            inner: Inner
            values: list
            mapping: dict
            color: Color

        payload = result_to_jsonable(
            Outer("n", Inner(1.5), [1, (2, 3)], {"k": Inner(2.0)}, Color.RED)
        )
        assert payload == {
            "name": "n",
            "inner": {"x": 1.5},
            "values": [1, [2, 3]],
            "mapping": {"k": {"x": 2.0}},
            "color": "Color.RED",
        }

    def test_cli_writes_json(self, tmp_path, capsys):
        import json

        assert main(["tables", "--json", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "tables.json").read_text())
        assert data["experiment"] == "tables"
        assert "Table II" in data["result"]["tables"]["table2"]
