"""Tests for the CLI experiment runner."""

import pytest

from repro.experiments.common import Fidelity
from repro.experiments.runner import (
    EXPERIMENTS,
    expand_experiment_names,
    main,
    resolve_fidelity,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"tables", "fig01", "fig02", "fig03", "fig04", "fig05",
                    "fig06", "fig07", "fig09", "fig10", "fig11", "fig12",
                    "fig13", "fig14", "ext_two_services", "ext_sensitivity",
                    "ext_adaptive", "ext_energy", "ext_fleet",
                    "ext_placement", "ext_autotune", "characterize"}
        assert set(EXPERIMENTS) == expected

    def test_modules_importable_with_run(self):
        import importlib

        for module_name in EXPERIMENTS.values():
            module = importlib.import_module(module_name)
            assert callable(module.run)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99", Fidelity.quick())

    def test_simulation_grid_experiments_expose_jobs(self):
        import importlib

        for name in ("fig03", "fig04", "fig05", "fig06", "fig09", "fig10",
                     "fig11", "fig12", "fig13"):
            module = importlib.import_module(EXPERIMENTS[name])
            assert callable(module.jobs), name


class TestNameExpansion:
    def test_exact_all(self):
        assert expand_experiment_names(["all"]) == list(EXPERIMENTS)

    def test_all_anywhere(self):
        names = expand_experiment_names(["fig09", "all"])
        assert names[0] == "fig09"
        assert set(names) == set(EXPERIMENTS)
        assert len(names) == len(EXPERIMENTS)  # deduplicated

    def test_plain_list_preserved(self):
        assert expand_experiment_names(["fig02", "fig01"]) == ["fig02", "fig01"]

    def test_duplicates_collapse(self):
        assert expand_experiment_names(["fig01", "fig01"]) == ["fig01"]


class TestFidelityResolution:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "full")
        assert resolve_fidelity("quick", 42).name == "quick"

    def test_env_honored_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_FIDELITY", "full")
        assert resolve_fidelity(None, 42).name == "full"
        monkeypatch.delenv("REPRO_FIDELITY")
        assert resolve_fidelity(None, 42).name == "quick"

    def test_seed_threaded_through(self):
        assert resolve_fidelity("quick", 7).sampling.seed == 7
        assert resolve_fidelity("full", 9).sampling.seed == 9


class TestCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "fig14" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "fig01" in capsys.readouterr().out

    def test_runs_light_experiment(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out

    def test_dispatch(self):
        result = run_experiment("tables", Fidelity.quick())
        assert "Table I" in result.format()


class TestJsonExport:
    def test_result_to_jsonable_dataclass(self):
        import dataclasses
        import enum

        from repro.experiments.runner import result_to_jsonable

        class Color(enum.Enum):
            RED = "red"

        @dataclasses.dataclass
        class Inner:
            x: float

        @dataclasses.dataclass
        class Outer:
            name: str
            inner: Inner
            values: list
            mapping: dict
            color: Color

        payload = result_to_jsonable(
            Outer("n", Inner(1.5), [1, (2, 3)], {"k": Inner(2.0)}, Color.RED)
        )
        assert payload == {
            "name": "n",
            "inner": {"x": 1.5},
            "values": [1, [2, 3]],
            "mapping": {"k": {"x": 2.0}},
            "color": "Color.RED",
        }

    def test_cli_writes_json(self, tmp_path, capsys):
        import json

        assert main(["tables", "--json", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "tables.json").read_text())
        assert data["experiment"] == "tables"
        assert "Table II" in data["result"]["tables"]["table2"]

    def test_json_records_seed_and_jobs(self, tmp_path, capsys):
        import json

        assert main(["tables", "--seed", "7", "--jobs", "2",
                     "--json", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "tables.json").read_text())
        assert data["seed"] == 7
        assert data["jobs"] == 2
        assert data["fidelity"] == "quick"
        assert "elapsed_seconds" in data


class TestEngineCLI:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.engine.store import reset_default_stores

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_stores()
        yield
        reset_default_stores()

    def test_jobs_flag_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["tables", "--jobs", "zero"])
        with pytest.raises(SystemExit):
            main(["tables", "--jobs", "0"])

    def test_gc_command(self, tmp_path, capsys):
        from repro.engine import CACHE_VERSION, default_store

        store = default_store()
        store.put("current", (1.0,))
        stale = store.directory / f"v{CACHE_VERSION - 1}"
        stale.mkdir(parents=True)
        (stale / "old.json").write_text("[1.0]")
        assert main(["gc"]) == 0
        out = capsys.readouterr().out
        assert "evicted 1" in out
        assert not stale.exists()


@pytest.fixture
def fake_experiment(monkeypatch):
    """Install a cheap experiment ('fakeexp') with a two-job grid."""
    import sys
    import types

    class _Result:
        def format(self):
            return "fake experiment output"

    class _Job:
        def __init__(self, n):
            self.n = n
            self.key = f"{n:02d}" + "f" * 62

        def run(self):
            return (float(self.n),)

    module = types.ModuleType("fake_experiment_module")
    module.__doc__ = "Fake experiment for CLI tests."
    module.jobs = lambda fidelity=None: [_Job(0), _Job(1)]
    module.run = lambda fidelity=None: _Result()
    monkeypatch.setitem(sys.modules, "fake_experiment_module", module)
    monkeypatch.setitem(EXPERIMENTS, "fakeexp", "fake_experiment_module")
    return module


class TestObservabilityCLI:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        from repro.engine.store import reset_default_stores

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        reset_default_stores()
        yield
        reset_default_stores()

    def test_run_subcommand_alias(self, fake_experiment, capsys):
        assert main(["run", "fakeexp"]) == 0
        assert "fake experiment output" in capsys.readouterr().out

    def test_json_reports_engine_stats(self, fake_experiment, tmp_path, capsys):
        import json

        out_dir = tmp_path / "json"
        assert main(["fakeexp", "--json", str(out_dir)]) == 0
        cold = json.loads((out_dir / "fakeexp.json").read_text())
        assert cold["engine"]["executed"] == 2
        assert cold["engine"]["cache_hits"] == 0
        # Warm rerun: the whole grid answers from the store.
        assert main(["fakeexp", "--json", str(out_dir)]) == 0
        warm = json.loads((out_dir / "fakeexp.json").read_text())
        assert warm["engine"]["executed"] == 0
        assert warm["engine"]["cache_hits"] == 2
        assert warm["engine"]["hit_rate"] == 1.0

    def test_trace_flag_writes_valid_chrome_trace(
        self, fake_experiment, tmp_path, capsys
    ):
        import json

        trace_path = tmp_path / "out.trace.json"
        assert main(["run", "fakeexp", "--trace", str(trace_path)]) == 0
        trace = json.loads(trace_path.read_text())
        assert "traceEvents" in trace
        spans = {e["name"] for e in trace["traceEvents"] if e.get("ph") == "X"}
        for phase in ("engine.dedupe", "engine.cache_lookup", "engine.queue",
                      "engine.execute", "engine.store_write"):
            assert phase in spans, phase
        assert "experiment:fakeexp" in spans
        assert "trace:" in capsys.readouterr().out

    def test_metrics_flag_truncates_and_restores_env(
        self, fake_experiment, tmp_path, capsys, monkeypatch
    ):
        import os

        from repro.obs.sampler import METRICS_ENV

        metrics_path = tmp_path / "metrics.jsonl"
        metrics_path.write_text("stale line\n")
        monkeypatch.delenv(METRICS_ENV, raising=False)
        assert main(["fakeexp", "--metrics", str(metrics_path)]) == 0
        assert "stale line" not in metrics_path.read_text()
        assert METRICS_ENV not in os.environ  # restored after the run

    def test_profile_flag_prints_self_time_table(
        self, fake_experiment, capsys, monkeypatch
    ):
        import os

        from repro.obs.profiler import PROFILE_ENV

        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert main(["fakeexp", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Self-time profile" in out
        assert "engine.execute" in out
        assert PROFILE_ENV not in os.environ  # profiling disabled again

    def test_inspect_summary_lists_recent_jobs(self, fake_experiment, capsys):
        assert main(["fakeexp"]) == 0
        capsys.readouterr()
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        assert "cache dir:" in out
        assert "Recent jobs" in out
        assert "serial" in out

    def test_inspect_key_prefix_shows_values(self, fake_experiment, capsys):
        assert main(["fakeexp"]) == 0
        capsys.readouterr()
        assert main(["inspect", "01f"]) == 0
        out = capsys.readouterr().out
        assert "mode=serial" in out
        assert "values=(1)" in out

    def test_inspect_unknown_prefix_fails(self, capsys):
        assert main(["inspect", "nope"]) == 1
        assert "no job telemetry" in capsys.readouterr().out


class TestPostmortemCLI:
    def write_bundle(self, tmp_path):
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(capacity=16, pre_windows=2, post_windows=1)
        base = {
            "hour": 0.0, "servers": 100, "throttled": 0, "mode_baseline": 10,
            "mode_b": 80, "mode_q": 10, "mean_tail_ms": 40.0,
            "mean_batch_uipc": 0.5,
        }
        for k in range(3):
            recorder.observe(dict(base, window=k, cluster_load=0.3,
                                  violations=0))
        recorder.observe(
            dict(base, window=3, cluster_load=1.2, violations=30),
            violators=[{"server": 5, "day_violations": 4,
                        "mode": "baseline", "mode_after": "q-mode",
                        "violation_streak": 2, "throttle_left": 0}],
            events=[{"type": "slo_alert", "slo": "qos", "policy": "page",
                     "window": 3, "hour": 0.5, "burn_fast": 4.0,
                     "burn_slow": 2.0, "threshold": 2.0, "fast_windows": 2,
                     "slow_windows": 4, "budget_remaining": 0.4}],
        )
        recorder.observe(dict(base, window=4, cluster_load=1.2,
                              violations=20))
        path = tmp_path / "bundle.jsonl"
        recorder.dump(path, reason="unit",
                      meta={"feed": "phases", "policy": "jittered",
                            "n_servers": 100})
        return path

    def test_postmortem_report(self, tmp_path, capsys):
        path = self.write_bundle(tmp_path)
        assert main(["postmortem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "load_spike" in out
        assert "qos/page" in out or "qos" in out

    def test_postmortem_json(self, tmp_path, capsys):
        import json

        path = self.write_bundle(tmp_path)
        assert main(["postmortem", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["alerts"] == 1
        assert report["captures"][0]["primary"] == "load_spike"

    def test_postmortem_missing_file_fails(self, tmp_path, capsys):
        assert main(["postmortem", str(tmp_path / "nope.jsonl")]) == 1
        assert "postmortem" in capsys.readouterr().err.lower()
