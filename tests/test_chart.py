"""Tests for plain-text line charts."""

import pytest

from repro.util.chart import render_chart


class TestRenderChart:
    def test_single_series(self):
        text = render_chart({"a": [0, 1, 2, 3]})
        assert "o=a" in text
        assert text.count("o") >= 4

    def test_monotone_series_descends_on_canvas(self):
        text = render_chart({"a": [0.0, 1.0]}, height=4)
        lines = [l for l in text.splitlines() if "|" in l]
        # The max value is on the top row, the min on the bottom row.
        assert "o" in lines[0]
        assert "o" in lines[-1]

    def test_multiple_series_glyphs(self):
        text = render_chart({"a": [0, 1], "b": [1, 0]})
        assert "o=a" in text and "x=b" in text
        assert "x" in text and "o" in text

    def test_y_labels(self):
        text = render_chart({"a": [2.0, 8.0]}, y_fmt=".1f")
        assert "8.0" in text and "2.0" in text

    def test_x_labels(self):
        text = render_chart({"a": [1, 2, 3]}, x_labels=["16", "32", "64"])
        assert "16" in text and "64" in text

    def test_title(self):
        text = render_chart({"a": [1]}, title="Figure N")
        assert text.splitlines()[0] == "Figure N"

    def test_flat_series(self):
        text = render_chart({"a": [5.0, 5.0, 5.0]})
        assert "o" in text

    def test_errors(self):
        with pytest.raises(ValueError):
            render_chart({})
        with pytest.raises(ValueError):
            render_chart({"a": [1], "b": [1, 2]})
        with pytest.raises(ValueError):
            render_chart({"a": []})
        with pytest.raises(ValueError):
            render_chart({"a": [1]}, height=1)
        with pytest.raises(ValueError):
            render_chart({"a": [1, 2]}, x_labels=["only-one"])

    def test_too_many_series(self):
        series = {f"s{i}": [0, 1] for i in range(9)}
        with pytest.raises(ValueError):
            render_chart(series)
