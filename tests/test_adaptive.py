"""Tests for the multi-configuration adaptive Stretch policy (§IV-D)."""

import pytest

from repro.core.adaptive import AdaptiveStretchPolicy, SlackBudget
from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.partitioning import B_MODES, BASELINE
from repro.core.stretch import StretchMode
from repro.workloads.profiles import QoSSpec

QOS = QoSSpec(target_ms=100.0, percentile=99.0, base_service_ms=8.0)


def performance(baseline_ls=0.55, bmode_ls=0.45) -> ColocationPerformance:
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(baseline_ls, 0.5),
            StretchMode.B_MODE: ModePerformance(bmode_ls, 0.6),
            StretchMode.Q_MODE: ModePerformance(0.58, 0.4),
        },
    )


def make_policy(**kwargs) -> AdaptiveStretchPolicy:
    return AdaptiveStretchPolicy(QOS, performance(), tuple(B_MODES), **kwargs)


class TestSlackBudget:
    def test_headroom(self):
        budget = SlackBudget(tail_latency_ms=40.0, target_ms=100.0,
                             safety_margin=0.8)
        assert budget.headroom == pytest.approx(2.0)

    def test_zero_latency_infinite_headroom(self):
        assert SlackBudget(0.0, 100.0).headroom == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            SlackBudget(-1.0, 100.0)
        with pytest.raises(ValueError):
            SlackBudget(1.0, 100.0, safety_margin=0.0)


class TestFactorInterpolation:
    def test_baseline_anchor(self):
        policy = make_policy()
        assert policy.factor_for(BASELINE) == pytest.approx(
            performance().ls_perf_factor(StretchMode.BASELINE)
        )

    def test_measured_b_mode_anchor(self):
        policy = make_policy()
        # 56-136 is the measured anchor.
        anchor = next(s for s in B_MODES if s.ls_entries == 56)
        assert policy.factor_for(anchor) == pytest.approx(
            performance().ls_perf_factor(StretchMode.B_MODE)
        )

    def test_monotone_in_partition_size(self):
        policy = make_policy()
        factors = [policy.factor_for(s) for s in B_MODES]  # shallow -> deep
        assert factors == sorted(factors, reverse=True)


class TestDecision:
    def test_violation_escalates(self):
        decision = make_policy().decide(150.0)
        assert decision.mode is StretchMode.Q_MODE
        assert decision.scheme == BASELINE

    def test_huge_slack_picks_deepest(self):
        decision = make_policy().decide(5.0)
        assert decision.mode is StretchMode.B_MODE
        assert decision.scheme == B_MODES[-1]  # 32-160

    def test_tight_latency_stays_baseline(self):
        decision = make_policy().decide(84.0)
        assert decision.mode is StretchMode.BASELINE
        assert decision.scheme == BASELINE

    def test_moderate_slack_picks_intermediate(self):
        policy = make_policy()
        deep = policy.decide(5.0).scheme
        # Find a latency where some but not all skews fit.
        chosen = {policy.decide(lat).scheme.name for lat in range(10, 90, 5)}
        assert len(chosen) >= 2
        assert deep == B_MODES[-1]

    def test_deeper_slack_never_shallower_choice(self):
        policy = make_policy()
        previous_depth = None
        for latency in (80.0, 60.0, 40.0, 20.0, 5.0):
            scheme = policy.decide(latency).scheme
            depth = 192 - scheme.ls_entries
            if previous_depth is not None:
                assert depth >= previous_depth
            previous_depth = depth

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_policy().decide(-1.0)


class TestConstruction:
    def test_requires_b_modes(self):
        with pytest.raises(ValueError):
            AdaptiveStretchPolicy(QOS, performance(), ())

    def test_requires_shallow_to_deep_order(self):
        with pytest.raises(ValueError):
            AdaptiveStretchPolicy(QOS, performance(), tuple(reversed(B_MODES)))


class TestInterpolation:
    def test_anchors_reproduced(self):
        from repro.core.partitioning import DEFAULT_B_MODE

        perf = performance()
        base = perf.interpolate(BASELINE)
        assert base.ls_uipc == pytest.approx(0.55)
        assert base.batch_uipc == pytest.approx(0.5)
        bmode = perf.interpolate(DEFAULT_B_MODE)
        assert bmode.ls_uipc == pytest.approx(0.45)
        assert bmode.batch_uipc == pytest.approx(0.6)

    def test_deeper_skew_extrapolates(self):
        perf = performance()
        deep = perf.interpolate(B_MODES[-1])  # 32-160
        assert deep.ls_uipc < 0.45
        assert deep.batch_uipc > 0.6

    def test_floors_prevent_zero(self):
        from repro.core.partitioning import PartitionScheme

        perf = performance(baseline_ls=0.5, bmode_ls=0.1)
        tiny = perf.interpolate(PartitionScheme(8, 184))
        assert tiny.ls_uipc > 0.0


class TestAdaptiveClosedLoop:
    def test_run_day_adaptive(self):
        from repro.core.server import ColocatedServer
        from repro.core.stretch import StretchMode
        from repro.workloads.registry import get_profile

        ls = get_profile("web_search")
        perf = performance(baseline_ls=0.55, bmode_ls=0.48)
        server = ColocatedServer(ls, perf, seed=6)
        policy = AdaptiveStretchPolicy(ls.qos, perf, tuple(B_MODES))
        timeline = server.run_day_adaptive(
            lambda h: 0.3, policy, window_minutes=60, requests_per_window=600
        )
        assert len(timeline.windows) == 24
        # Low constant load: the policy settles into deep B-modes.
        engaged = [w for w in timeline.windows if w.mode is StretchMode.B_MODE]
        assert len(engaged) >= 12
        schemes = {w.scheme for w in engaged}
        assert schemes & {"40-152", "32-160"}

    def test_adaptive_beats_fixed_at_low_load(self):
        from repro.core.server import ColocatedServer
        from repro.core.stretch import StretchMode
        from repro.workloads.registry import get_profile

        ls = get_profile("web_search")
        perf = performance(baseline_ls=0.55, bmode_ls=0.48)
        baseline_uipc = perf.per_mode[StretchMode.BASELINE].batch_uipc

        server = ColocatedServer(ls, perf, seed=6)
        fixed = server.run_day(lambda h: 0.25, window_minutes=60,
                               requests_per_window=600)
        server2 = ColocatedServer(ls, perf, seed=6)
        policy = AdaptiveStretchPolicy(ls.qos, perf, tuple(B_MODES))
        adaptive = server2.run_day_adaptive(lambda h: 0.25, policy,
                                            window_minutes=60,
                                            requests_per_window=600)
        # With abundant slack, deeper skews buy more batch throughput than
        # the single fixed B-mode.
        assert adaptive.batch_throughput_gain(baseline_uipc) >= (
            fixed.batch_throughput_gain(baseline_uipc) - 0.01
        )

    def test_run_day_adaptive_zero_load(self):
        from repro.core.server import ColocatedServer
        from repro.core.stretch import StretchMode
        from repro.workloads.registry import get_profile

        ls = get_profile("web_search")
        perf = performance(baseline_ls=0.55, bmode_ls=0.48)
        server = ColocatedServer(ls, perf, seed=6)
        policy = AdaptiveStretchPolicy(ls.qos, perf, tuple(B_MODES))
        timeline = server.run_day_adaptive(
            lambda h: 0.0, policy, window_minutes=120, requests_per_window=400
        )
        # Zero offered load clamps to the 2% floor: permanent slack.
        assert all(w.load_fraction == 0.02 for w in timeline.windows)
        assert timeline.violation_rate == 0.0
        engaged = [w for w in timeline.windows if w.mode is StretchMode.B_MODE]
        assert len(engaged) >= len(timeline.windows) // 2
        # With nothing queued the policy can afford the deepest skews.
        assert {w.scheme for w in engaged} & {"40-152", "32-160"}

    def test_run_day_adaptive_saturating_load(self):
        from repro.core.server import ColocatedServer
        from repro.core.stretch import StretchMode
        from repro.workloads.registry import get_profile

        ls = get_profile("web_search")
        perf = performance(baseline_ls=0.55, bmode_ls=0.48)
        server = ColocatedServer(ls, perf, seed=6)
        policy = AdaptiveStretchPolicy(ls.qos, perf, tuple(B_MODES))
        timeline = server.run_day_adaptive(
            lambda h: 5.0, policy, window_minutes=120, requests_per_window=400
        )
        # 5x the calibrated peak: the queue never drains, every window
        # violates, and the policy never finds budget for any B-mode.
        assert all(w.load_fraction == 5.0 for w in timeline.windows)
        assert timeline.violation_rate == 1.0
        assert not any(
            w.mode is StretchMode.B_MODE for w in timeline.windows
        )
