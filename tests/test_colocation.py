"""Tests for the per-mode colocation performance model."""

import pytest

from repro.core.colocation import (
    ColocationPerformance,
    ModePerformance,
    measure_colocation_performance,
)
from repro.core.stretch import StretchMode
from repro.cpu.sampling import SamplingConfig
from repro.workloads.registry import get_profile


def manual_performance() -> ColocationPerformance:
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(ls_uipc=0.52, batch_uipc=0.50),
            StretchMode.B_MODE: ModePerformance(ls_uipc=0.45, batch_uipc=0.60),
            StretchMode.Q_MODE: ModePerformance(ls_uipc=0.57, batch_uipc=0.40),
        },
    )


class TestDerivedMetrics:
    def test_ls_perf_factor(self):
        perf = manual_performance()
        assert perf.ls_perf_factor(StretchMode.BASELINE) == pytest.approx(0.52 / 0.6)

    def test_ls_perf_factor_capped_at_one(self):
        perf = ColocationPerformance(
            "a", "b", ls_solo_uipc=0.5,
            per_mode={StretchMode.BASELINE: ModePerformance(0.6, 0.1)},
        )
        assert perf.ls_perf_factor(StretchMode.BASELINE) == 1.0

    def test_batch_speedup(self):
        perf = manual_performance()
        assert perf.batch_speedup(StretchMode.B_MODE) == pytest.approx(0.2)
        assert perf.batch_speedup(StretchMode.Q_MODE) == pytest.approx(-0.2)
        assert perf.batch_speedup(StretchMode.BASELINE) == 0.0


class TestMeasurement:
    @pytest.fixture(scope="class")
    def measured(self):
        return measure_colocation_performance(
            get_profile("web_search"),
            get_profile("zeusmp"),
            sampling=SamplingConfig(n_samples=1, warmup_instructions=3000,
                                    measure_instructions=3000, seed=5),
        )

    def test_covers_all_modes(self, measured):
        assert set(measured.per_mode) == set(StretchMode)

    def test_factors_in_unit_range(self, measured):
        for mode in StretchMode:
            assert 0.0 < measured.ls_perf_factor(mode) <= 1.0

    def test_b_mode_helps_batch(self, measured):
        assert measured.batch_speedup(StretchMode.B_MODE) > 0.0

    def test_b_mode_costs_ls(self, measured):
        assert measured.ls_perf_factor(StretchMode.B_MODE) < measured.ls_perf_factor(
            StretchMode.Q_MODE
        )

    def test_workload_names(self, measured):
        assert measured.ls_workload == "web_search"
        assert measured.batch_workload == "zeusmp"

    def test_without_q_mode_falls_back(self):
        perf = measure_colocation_performance(
            get_profile("web_search"),
            get_profile("gamess"),
            q_mode=None,
            sampling=SamplingConfig(n_samples=1, warmup_instructions=1000,
                                    measure_instructions=1000, seed=5),
        )
        assert perf.per_mode[StretchMode.Q_MODE] == perf.per_mode[StretchMode.BASELINE]
