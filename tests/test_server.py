"""Tests for the closed-loop colocated server simulation."""

import pytest

from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.monitor import MonitorConfig
from repro.core.server import ColocatedServer, ServerTimeline, WindowRecord
from repro.core.stretch import StretchMode
from repro.workloads.registry import get_profile


def performance_model() -> ColocationPerformance:
    """Hand-built per-mode model (avoids slow core simulation in tests)."""
    return ColocationPerformance(
        ls_workload="web_search",
        batch_workload="zeusmp",
        ls_solo_uipc=0.6,
        per_mode={
            StretchMode.BASELINE: ModePerformance(ls_uipc=0.52, batch_uipc=0.50),
            StretchMode.B_MODE: ModePerformance(ls_uipc=0.45, batch_uipc=0.60),
            StretchMode.Q_MODE: ModePerformance(ls_uipc=0.58, batch_uipc=0.40),
        },
    )


def make_server(**kwargs) -> ColocatedServer:
    return ColocatedServer(
        get_profile("web_search"), performance_model(), seed=9, **kwargs
    )


class TestConstruction:
    def test_requires_matching_model(self):
        with pytest.raises(ValueError, match="performance model"):
            ColocatedServer(get_profile("data_serving"), performance_model())

    def test_requires_qos(self):
        with pytest.raises(ValueError):
            ColocatedServer(get_profile("zeusmp"), performance_model())


class TestRunDay:
    def test_window_count(self):
        timeline = make_server().run_day(
            lambda h: 0.3, window_minutes=60, requests_per_window=400
        )
        assert len(timeline.windows) == 24

    def test_low_load_engages_b_mode(self):
        timeline = make_server().run_day(
            lambda h: 0.25, window_minutes=30, requests_per_window=600
        )
        assert timeline.bmode_fraction > 0.5
        assert timeline.violation_rate < 0.2

    def test_overload_avoids_b_mode(self):
        timeline = make_server().run_day(
            lambda h: 1.1, window_minutes=30, requests_per_window=600
        )
        assert timeline.bmode_fraction < 0.3

    def test_diurnal_switches_modes(self):
        def load(hour: float) -> float:
            return 0.25 if hour < 12 else 0.95

        timeline = make_server().run_day(load, window_minutes=30,
                                         requests_per_window=600)
        morning = [w for w in timeline.windows if w.hour < 12]
        evening = [w for w in timeline.windows if w.hour >= 12.5]
        morning_b = sum(w.mode is StretchMode.B_MODE for w in morning) / len(morning)
        evening_b = sum(w.mode is StretchMode.B_MODE for w in evening) / len(evening)
        assert morning_b > evening_b

    def test_batch_gain_positive_at_low_load(self):
        timeline = make_server().run_day(
            lambda h: 0.25, window_minutes=30, requests_per_window=600
        )
        gain = timeline.batch_throughput_gain(0.50)
        assert gain > 0.05

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            make_server().run_day(lambda h: 0.3, window_minutes=0)


class TestTimeline:
    def test_empty_timeline_metrics(self):
        t = ServerTimeline()
        assert t.violation_rate == 0.0
        assert t.bmode_fraction == 0.0
        assert t.batch_throughput_gain(1.0) == 0.0

    def test_record_fields(self):
        record = WindowRecord(
            hour=1.0, load_fraction=0.5, mode=StretchMode.BASELINE,
            tail_latency_ms=50.0, qos_violated=False, throttled=False,
            batch_uipc=0.5,
        )
        assert record.mode is StretchMode.BASELINE
