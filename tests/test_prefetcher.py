"""Tests for the PC-indexed stride prefetcher."""

import pytest

from repro.cpu.prefetcher import StridePrefetcher


class TestLockOn:
    def test_constant_stride_locks(self):
        pf = StridePrefetcher(degree=2)
        issued = []
        for i in range(6):
            issued.extend(pf.train(pc=1, addr=1000 + 64 * i))
        assert issued  # prefetches after confidence builds

    def test_prefetch_targets_ahead(self):
        pf = StridePrefetcher(degree=2)
        for i in range(4):
            out = pf.train(pc=1, addr=64 * i)
        # After the 4th access at 192, expect blocks for 256 and 320.
        assert out == [4, 5]

    def test_no_prefetch_for_random_strides(self):
        pf = StridePrefetcher()
        addrs = [10, 500, 64, 9000, 123, 777, 4242]
        issued = []
        for addr in addrs:
            issued.extend(pf.train(pc=1, addr=addr))
        assert issued == []

    def test_zero_stride_never_prefetches(self):
        pf = StridePrefetcher()
        issued = []
        for _ in range(10):
            issued.extend(pf.train(pc=1, addr=4096))
        assert issued == []

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(degree=1)
        for i in range(4):
            pf.train(pc=1, addr=64 * i)
        assert pf.train(pc=1, addr=100000) == []  # broken stride
        assert pf.train(pc=1, addr=100064) == []  # rebuilding confidence

    def test_sub_line_stride_skips_same_block(self):
        pf = StridePrefetcher(degree=1)
        out = []
        for i in range(8):
            out = pf.train(pc=1, addr=4 * i)  # stride 4, stays in line 0
        assert out == []  # next-stride target is in the same block


class TestTableManagement:
    def test_table_capacity(self):
        pf = StridePrefetcher(table_size=4)
        for pc in range(10):
            pf.train(pc=pc, addr=pc * 1000)
        assert len(pf) <= 4

    def test_eviction_forgets_stride(self):
        pf = StridePrefetcher(table_size=2, degree=1)
        for i in range(4):
            pf.train(pc=1, addr=64 * i)  # locked
        pf.train(pc=2, addr=0)
        pf.train(pc=3, addr=0)  # evicts pc=1
        out = pf.train(pc=1, addr=64 * 4)
        assert out == []  # must re-learn

    def test_negative_keys_supported(self):
        """Stream handles are negative keys (see uncore docs)."""
        pf = StridePrefetcher(degree=1)
        out = []
        for i in range(5):
            out = pf.train(pc=-3, addr=64 * i)
        assert out

    def test_issued_counter(self):
        pf = StridePrefetcher(degree=2)
        for i in range(8):
            pf.train(pc=1, addr=64 * i)
        assert pf.issued > 0
        pf.reset_stats()
        assert pf.issued == 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StridePrefetcher(table_size=0)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)
