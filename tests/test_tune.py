"""Tests for the CRN-paired monitor autotuner (`repro.tune`).

The load-bearing guarantees:

* every (candidate, scenario) fleet day goes through the result store —
  a warm re-run of the same search simulates **zero** fleet days;
* the search is deterministic for a given seed (CRN pairing plus
  stateless trial RNG);
* the default config is always evaluated and never beaten by accident:
  ``best.score >= default.score`` by construction;
* the :class:`~repro.tune.TuneSpace` grid validates eagerly against
  ``MonitorConfig``'s invariants.
"""

import numpy as np
import pytest

from repro.core.monitor import MonitorConfig
from repro.engine.store import ResultStore
from repro.tune import (
    CandidateScore,
    PortfolioEntry,
    ScenarioOutcome,
    TuneSpace,
    default_portfolio,
    tune_monitor,
)
from repro.workloads.registry import get_profile
from tests.test_fleet import fleet_config, performance_model

#: Tiny search: 2 portfolio days x (1 default + 2 trials + 1 sweep axis).
SPACE = TuneSpace(
    engage_fraction=(0.5, 0.6),
    engage_windows=(2, 3),
    violation_windows_to_throttle=(3,),
    throttle_windows=(10,),
)
PORTFOLIO = (
    PortfolioEntry(scenario="calm"),
    PortfolioEntry(scenario="stragglers", weight=2.0),
)


def tiny_tune(store, **kwargs):
    defaults = dict(
        portfolio=PORTFOLIO,
        space=SPACE,
        n_trials=2,
        descent_rounds=1,
        seed=7,
        store=store,
    )
    defaults.update(kwargs)
    return tune_monitor(
        get_profile("web_search"),
        performance_model(),
        fleet_config(n_servers=16),
        **defaults,
    )


class TestTuneSpace:
    def test_grid_size_and_axes(self):
        assert SPACE.size == 4
        assert list(SPACE.axes) == [
            "engage_fraction", "engage_windows",
            "violation_windows_to_throttle", "throttle_windows",
        ]

    def test_rejects_invalid_axis_values(self):
        with pytest.raises(ValueError):
            TuneSpace(engage_fraction=(0.5, 1.5))
        with pytest.raises(ValueError):
            TuneSpace(throttle_windows=(0,))
        with pytest.raises(ValueError):
            TuneSpace(engage_windows=())

    def test_sample_draws_from_the_grid(self):
        rng = np.random.default_rng(0)
        for _ in range(16):
            monitor = SPACE.sample(rng)
            assert monitor.engage_fraction in SPACE.engage_fraction
            assert monitor.engage_windows in SPACE.engage_windows

    def test_values_are_plain_python(self):
        space = TuneSpace(
            engage_fraction=np.array([0.5, 0.6]),
            engage_windows=np.array([2, 3]),
        )
        assert all(type(v) is float for v in space.engage_fraction)
        assert all(type(v) is int for v in space.engage_windows)


class TestPortfolio:
    def test_default_portfolio_shape(self):
        names = [e.scenario.name for e in default_portfolio()]
        assert names == ["calm", "stragglers", "incident", "flash_crowd"]

    def test_entry_resolves_and_validates(self):
        entry = PortfolioEntry(scenario="incident")
        assert entry.scenario.name == "incident"
        with pytest.raises(ValueError, match="weights"):
            PortfolioEntry(scenario="calm", weight=0.0)


class TestTuneMonitor:
    def test_search_is_deterministic(self, tmp_path):
        a = tiny_tune(ResultStore(tmp_path))
        b = tiny_tune(ResultStore(tmp_path))
        assert a.best.monitor == b.best.monitor
        assert a.best.score == b.best.score
        assert [c.monitor for c in a.candidates] == [
            c.monitor for c in b.candidates
        ]

    def test_warm_rerun_simulates_nothing(self, tmp_path):
        cold = tiny_tune(ResultStore(tmp_path))
        assert cold.fleet_runs > 0
        warm = tiny_tune(ResultStore(tmp_path))
        assert warm.fleet_runs == 0
        assert warm.cached_runs == cold.fleet_runs + cold.cached_runs

    def test_default_is_evaluated_and_never_beaten_silently(self, tmp_path):
        result = tiny_tune(ResultStore(tmp_path))
        assert result.default.monitor == MonitorConfig()
        assert result.default in result.candidates
        assert result.best.score >= result.default.score
        assert result.best is result.candidates[0]
        assert result.improved == (
            result.best.score > result.default.score
        )

    def test_outcomes_cover_the_portfolio(self, tmp_path):
        result = tiny_tune(ResultStore(tmp_path))
        for cand in result.candidates:
            assert [o.scenario for o in cand.outcomes] == [
                "calm", "stragglers"
            ]
            assert all(o.budget_burn >= 0.0 for o in cand.outcomes)

    def test_format_smoke(self, tmp_path):
        text = tiny_tune(ResultStore(tmp_path)).format()
        assert "tuned monitor vs default" in text
        assert "dominates default on:" in text
        assert "stragglers" in text

    def test_rejects_bad_inputs(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="non-empty portfolio"):
            tiny_tune(store, portfolio=())
        with pytest.raises(ValueError, match="violation_rate"):
            tiny_tune(store, slo="qos:tail<100ms")
        with pytest.raises(ValueError, match="n_trials"):
            tiny_tune(store, n_trials=-1)

    def test_dominates_relation(self):
        def cand(vr, uipc):
            return CandidateScore(
                monitor=MonitorConfig(), score=0.0, violation_rate=vr,
                batch_gain=0.0, budget_burn=0.0,
                outcomes=(ScenarioOutcome(
                    scenario="calm", weight=1.0, violation_rate=vr,
                    mean_batch_uipc=uipc, bmode_fraction=0.0,
                    throttled_fraction=0.0, budget_burn=0.0,
                ),),
            )

        base = cand(0.05, 0.5)
        assert cand(0.04, 0.5).dominates(base) == ("calm",)
        assert cand(0.05, 0.6).dominates(base) == ()  # vr must be strict
        assert cand(0.04, 0.4).dominates(base) == ()  # uipc must hold
