"""Tests for the MSHR file (per-thread quotas, coalescing, stalls)."""

import pytest

from repro.cpu.caches import MSHRFile


class TestConstruction:
    def test_valid(self):
        MSHRFile(10, 5)

    def test_quota_exceeds_total(self):
        with pytest.raises(ValueError):
            MSHRFile(4, 5)

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            MSHRFile(0, 0)


class TestAcquire:
    def test_fill_time(self):
        m = MSHRFile(10, 5)
        assert m.acquire(0, block=1, now=100, latency=50) == 150

    def test_coalescing_same_block(self):
        m = MSHRFile(10, 5)
        first = m.acquire(0, 1, now=0, latency=100)
        second = m.acquire(0, 1, now=10, latency=100)
        assert second == first
        assert m.coalesced[0] == 1

    def test_distinct_blocks_independent(self):
        m = MSHRFile(10, 5)
        a = m.acquire(0, 1, now=0, latency=100)
        b = m.acquire(0, 2, now=5, latency=100)
        assert (a, b) == (100, 105)

    def test_quota_stall_delays_start(self):
        m = MSHRFile(10, 5)
        fills = [m.acquire(0, block, now=0, latency=100) for block in range(5)]
        assert fills == [100] * 5
        # Sixth concurrent miss waits for the earliest fill to retire.
        sixth = m.acquire(0, 99, now=0, latency=100)
        assert sixth == 200
        assert m.stalls[0] >= 1

    def test_quota_per_thread(self):
        m = MSHRFile(10, 5)
        for block in range(5):
            m.acquire(0, block, now=0, latency=100)
        # Thread 1 has its own quota: no stall.
        assert m.acquire(1, 50, now=0, latency=100) == 100
        assert m.stalls[1] == 0

    def test_total_capacity_bound(self):
        m = MSHRFile(8, 5, n_threads=2)
        for block in range(5):
            m.acquire(0, block, now=0, latency=100)
        for block in range(3):
            m.acquire(1, 100 + block, now=0, latency=100)
        # File full (5 + 3 = 8): thread 1 under quota but must wait.
        fill = m.acquire(1, 999, now=0, latency=100)
        assert fill == 200

    def test_expiry_frees_entries(self):
        m = MSHRFile(10, 5)
        for block in range(5):
            m.acquire(0, block, now=0, latency=100)
        # At t=150 all fills have retired: no stall.
        assert m.acquire(0, 99, now=150, latency=100) == 250
        assert m.stalls[0] == 0


class TestOccupancy:
    def test_counts_inflight(self):
        m = MSHRFile(10, 5)
        m.acquire(0, 1, now=0, latency=100)
        m.acquire(0, 2, now=0, latency=50)
        assert m.occupancy(0, now=10) == 2
        assert m.occupancy(0, now=60) == 1
        assert m.occupancy(0, now=200) == 0

    def test_total_occupancy(self):
        m = MSHRFile(10, 5)
        m.acquire(0, 1, now=0, latency=100)
        m.acquire(1, 2, now=0, latency=100)
        assert m.total_occupancy(now=50) == 2

    def test_reset_stats(self):
        m = MSHRFile(10, 5)
        m.acquire(0, 1, now=0, latency=10)
        m.acquire(0, 1, now=0, latency=10)
        m.reset_stats()
        assert m.coalesced == [0, 0]
        assert m.stalls == [0, 0]
