"""Tests for the diurnal load models and case studies (Figure 14)."""

import pytest

from repro.qos.diurnal import (
    DiurnalCaseStudy,
    web_search_cluster_load,
    youtube_cluster_load,
)


class TestLoadCurves:
    @pytest.mark.parametrize("load_fn", [web_search_cluster_load, youtube_cluster_load])
    def test_range(self, load_fn):
        for k in range(0, 24 * 4):
            value = load_fn(k / 4)
            assert 0.0 < value <= 1.0

    @pytest.mark.parametrize("load_fn", [web_search_cluster_load, youtube_cluster_load])
    def test_peak_reaches_one(self, load_fn):
        assert max(load_fn(h) for h in range(24)) == pytest.approx(1.0)

    @pytest.mark.parametrize("load_fn", [web_search_cluster_load, youtube_cluster_load])
    def test_wraps_around_midnight(self, load_fn):
        assert load_fn(24.0) == pytest.approx(load_fn(0.0))
        assert load_fn(25.5) == pytest.approx(load_fn(1.5))

    def test_interpolation_between_hours(self):
        a, b = web_search_cluster_load(3.0), web_search_cluster_load(4.0)
        mid = web_search_cluster_load(3.5)
        assert min(a, b) <= mid <= max(a, b)

    def test_web_search_plateau_shape(self):
        """Daytime plateau near peak, overnight trough (paper Fig. 14a)."""
        assert web_search_cluster_load(12.5) > 0.9
        assert web_search_cluster_load(4.0) < 0.4

    def test_youtube_peaks_at_2pm(self):
        assert youtube_cluster_load(13.0) == max(
            youtube_cluster_load(h) for h in range(24)
        )


class TestCaseStudy:
    def test_web_search_hours_match_paper(self):
        study = DiurnalCaseStudy("ws", bmode_batch_gain=0.11)
        hours = study.hours_enabled(web_search_cluster_load)
        assert hours == pytest.approx(11.0, abs=1.5)  # paper: ~11 h

    def test_youtube_hours_match_paper(self):
        study = DiurnalCaseStudy("yt", bmode_batch_gain=0.11)
        hours = study.hours_enabled(youtube_cluster_load)
        assert hours == pytest.approx(17.0, abs=1.5)  # paper: ~17 h

    def test_daily_gain_formula(self):
        study = DiurnalCaseStudy("x", bmode_batch_gain=0.12)
        hours = study.hours_enabled(web_search_cluster_load)
        expected = 0.12 * hours / 24.0
        assert study.daily_throughput_gain(web_search_cluster_load) == pytest.approx(
            expected
        )

    def test_always_low_load_gets_full_gain(self):
        study = DiurnalCaseStudy("flat", bmode_batch_gain=0.2)
        assert study.daily_throughput_gain(lambda h: 0.3) == pytest.approx(0.2)

    def test_always_peak_gets_nothing(self):
        study = DiurnalCaseStudy("hot", bmode_batch_gain=0.2)
        assert study.daily_throughput_gain(lambda h: 0.99) == 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            DiurnalCaseStudy("x", bmode_batch_gain=0.1, threshold=0.0)

    def test_small_negative_gain_allowed(self):
        # Measured gains can be slightly negative at low fidelity.
        study = DiurnalCaseStudy("x", bmode_batch_gain=-0.1)
        assert study.daily_throughput_gain(lambda h: 0.3) == pytest.approx(-0.1)

    def test_impossible_gain_rejected(self):
        with pytest.raises(ValueError):
            DiurnalCaseStudy("x", bmode_batch_gain=-1.0)
