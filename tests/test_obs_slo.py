"""Tests for the fleet SLO engine (`repro.obs.slo`).

The burn-rate math is checked against hand-computed fixtures: a fleet of
100 servers under a 10% violation-rate SLO with a single 2/4×2 alert
pair, where every rolling-window burn value below is arithmetic you can
redo on paper.  The alert edge discipline (fire on fast∧slow, clear on
fast alone, re-fire after clearing) and day-scale error-budget
accounting are what the serve loop's alerting relies on.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_ALERT_POLICIES,
    DEFAULT_SLOS,
    BurnPolicy,
    SLOEngine,
    SLOSpec,
    parse_slo,
)


def record(window: int, violations: int, servers: int = 100,
           tail: float = 50.0) -> dict:
    return {
        "window": window, "hour": window / 6.0, "servers": servers,
        "violations": violations, "mean_tail_ms": tail,
    }


def feed(engine: SLOEngine, per_window_violations) -> list[dict]:
    events = []
    for k, violations in enumerate(per_window_violations):
        events.extend(engine.observe(record(k, violations)))
    return events


class TestSpecsAndParsing:
    def test_parse_minimal_spec_gets_default_alerts(self):
        spec = parse_slo("qos:violation_rate<0.05")
        assert spec.name == "qos"
        assert spec.target == 0.05
        assert spec.alerts == DEFAULT_ALERT_POLICIES

    def test_parse_custom_alert_pairs(self):
        spec = parse_slo("q:violation_rate<0.02@2/6x5,12/36x1.5")
        assert [(p.fast_windows, p.slow_windows, p.threshold)
                for p in spec.alerts] == [(2, 6, 5.0), (12, 36, 1.5)]
        assert spec.alerts[0].name == "page"

    def test_parse_tail_objective(self):
        spec = parse_slo("tail:tail<250ms@3/9x10")
        assert spec.objective == "tail"
        assert spec.tail_ms == 250.0
        assert spec.target == 0.05

    @pytest.mark.parametrize("bad", [
        "noseparator", "x:violation_rate<1.5", "x:tail<250",
        "x:violation_rate<0.05@3x9", "x:wrong<0.05", ":violation_rate<0.1",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="target"):
            SLOSpec("x", "violation_rate", 0.0)
        with pytest.raises(ValueError, match="tail_ms"):
            SLOSpec("x", "tail", 0.05)
        with pytest.raises(ValueError, match="fast_windows"):
            BurnPolicy("p", fast_windows=6, slow_windows=3, threshold=2.0)

    def test_default_slos_shape(self):
        assert len(DEFAULT_SLOS) == 1
        assert DEFAULT_SLOS[0].objective == "violation_rate"

    def test_engine_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(["a:violation_rate<0.1", "a:violation_rate<0.2"])
        with pytest.raises(ValueError, match="at least one"):
            SLOEngine([])


class TestBurnRateFixtures:
    """100 servers, target 0.1, one 2/4×2 alert pair.

    Violations [0, 0, 40, 40, 40, 0, 0]:
      window 2: fast = (40+40... last 2) actually (0+40)/200 = 0.2 → 2.0;
                slow = 40/300 ≈ 0.133 → 1.33   (no alert: slow < 2)
      window 3: fast = 80/200 = 0.4 → 4.0; slow = 80/400 = 0.2 → 2.0 → FIRE
      window 6: fast = 0 → clears
    """

    def engine(self, registry=None) -> SLOEngine:
        return SLOEngine(
            ["t:violation_rate<0.1@2/4x2"], day_windows=10,
            registry=registry,
        )

    def test_hand_computed_burn_rates(self):
        engine = self.engine()
        feed(engine, [0, 0, 40, 40, 40])
        state = engine._states["t"]
        assert state.burn_rate(2) == pytest.approx(4.0)   # 80/200/0.1
        assert state.burn_rate(4) == pytest.approx(3.0)   # 120/400/0.1
        status = engine.status()["t"]
        assert status["burn"]["page"]["fast"] == pytest.approx(4.0)
        assert status["burn"]["page"]["slow"] == pytest.approx(3.0)

    def test_alert_fires_only_when_both_windows_burn(self):
        engine = self.engine()
        events = feed(engine, [0, 0, 40, 40])
        assert len(events) == 1
        event = events[0]
        assert event["type"] == "slo_alert"
        assert event["window"] == 3
        assert event["burn_fast"] == pytest.approx(4.0)
        assert event["burn_slow"] == pytest.approx(2.0)

    def test_no_alert_on_fast_spike_alone(self):
        # One hot window: fast = 40/200/0.1 = 2.0 but slow stays < 2.
        engine = self.engine()
        assert feed(engine, [0, 0, 40, 0, 0]) == []

    def test_alert_is_edge_triggered_and_refires_after_clear(self):
        engine = self.engine()
        events = feed(engine, [0, 0, 40, 40, 40, 0, 0, 40, 40])
        assert [e["window"] for e in events] == [3, 7]
        assert engine.status()["t"]["burn"]["page"]["fired"] == 2

    def test_alerting_flag_tracks_active_state(self):
        engine = self.engine()
        feed(engine, [0, 0, 40, 40])
        assert engine.alerting("t")
        feed(engine, [0, 0])
        assert not engine.alerting("t")

    def test_budget_accounting_hand_computed(self):
        # Day budget = 0.1 * 100 servers * 10 windows = 100 bad events.
        engine = self.engine()
        feed(engine, [0, 0, 40, 40])
        assert engine.budget_consumed("t") == pytest.approx(0.8)
        assert engine.budget_remaining("t") == pytest.approx(0.2)
        feed(engine, [40])
        assert engine.budget_consumed("t") == pytest.approx(1.2)
        assert engine.budget_remaining("t") == pytest.approx(-0.2)

    def test_budget_impact_projection(self):
        engine = self.engine()
        # Violating at 2x target for half the day consumes 100% budget.
        assert engine.budget_impact("t", 0.2, 5) == pytest.approx(1.0)
        assert engine.budget_impact("t", 0.1, 10) == pytest.approx(1.0)
        assert engine.budget_impact("t", 0.05, 2) == pytest.approx(0.1)

    def test_registry_gauges_published(self):
        registry = MetricsRegistry()
        engine = self.engine(registry)
        feed(engine, [0, 0, 40, 40])
        snap = registry.collect()
        assert snap["fleet.slo.t.burn.page.fast"]["value"] == (
            pytest.approx(4.0)
        )
        assert snap["fleet.slo.t.alert.page"]["value"] == 1.0
        assert snap["fleet.slo.t.alerts"]["value"] == 1
        assert snap["fleet.slo.t.budget_remaining"]["value"] == (
            pytest.approx(0.2)
        )

    def test_zero_total_windows_burn_zero(self):
        engine = SLOEngine(["t:violation_rate<0.1"], day_windows=10)
        events = engine.observe(record(0, 0, servers=0))
        assert events == []
        assert engine.status()["t"]["bad_fraction"] == 0.0
        assert engine.budget_consumed("t") == 0.0


class TestTailObjective:
    def test_tail_objective_counts_hot_windows(self):
        engine = SLOEngine(
            ["lat:tail<100ms@2/4x2"], day_windows=10,
        )
        # Windows over 100 ms count as bad.  At window 2 (the first hot
        # one): fast = (1/2)/0.05 = 10 ≥ 2, slow = (1/3)/0.05 ≈ 6.7 ≥ 2.
        events = []
        for k, tail in enumerate([50.0, 50.0, 150.0, 150.0]):
            events.extend(engine.observe(record(k, 0, tail=tail)))
        assert [e["window"] for e in events] == [2]
        assert engine.status()["lat"]["bad_fraction"] == pytest.approx(0.5)

    def test_multiple_specs_score_independently(self):
        engine = SLOEngine(
            ["qos:violation_rate<0.1@2/4x2", "lat:tail<100ms@2/4x2"],
            day_windows=10,
        )
        engine.observe(record(0, 50, tail=150.0))
        status = engine.status()
        assert set(status) == {"qos", "lat"}
        assert status["qos"]["bad_fraction"] == pytest.approx(0.5)
        assert status["lat"]["bad_fraction"] == pytest.approx(1.0)
