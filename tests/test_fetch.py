"""Tests for fetch/dispatch thread-selection policies."""

import pytest

from repro.cpu.fetch import (
    ICountPolicy,
    RoundRobinPolicy,
    StaticRatioPolicy,
    make_fetch_policy,
)


class TestICount:
    def test_prefers_fewer_inflight(self):
        p = ICountPolicy()
        assert p.order(0, [10, 50]) == (0, 1)
        assert p.order(0, [50, 10]) == (1, 0)

    def test_ties_alternate(self):
        p = ICountPolicy()
        orders = {p.order(c, [5, 5]) for c in (0, 1)}
        assert orders == {(0, 1), (1, 0)}


class TestRoundRobin:
    def test_alternates_regardless_of_counts(self):
        p = RoundRobinPolicy()
        assert p.order(0, [0, 100]) != p.order(1, [0, 100])


class TestStaticRatio:
    def test_one_to_three_pattern(self):
        p = StaticRatioPolicy(1, 3)
        primaries = [p.order(c, [0, 0])[0] for c in range(8)]
        # 1 cycle thread0 priority, 3 cycles thread1, repeating.
        assert primaries == [0, 1, 1, 1, 0, 1, 1, 1]

    def test_one_to_one(self):
        p = StaticRatioPolicy(1, 1)
        assert p.order(0, [0, 0])[0] == 0
        assert p.order(1, [0, 0])[0] == 1

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            StaticRatioPolicy(0, 4)


class TestFactory:
    def test_icount(self):
        assert isinstance(make_fetch_policy("icount"), ICountPolicy)

    def test_round_robin(self):
        assert isinstance(make_fetch_policy("round_robin"), RoundRobinPolicy)

    def test_ratio(self):
        policy = make_fetch_policy("ratio", (1, 8))
        assert isinstance(policy, StaticRatioPolicy)
        assert policy.m1 == 8

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_fetch_policy("mystery")


class TestWholeCycleSemantics:
    def test_ratio_policy_owns_whole_cycles(self):
        assert StaticRatioPolicy(1, 4).whole_cycle is True

    def test_interleaving_policies(self):
        assert ICountPolicy().whole_cycle is False
        assert RoundRobinPolicy().whole_cycle is False

    def test_throttling_starves_in_core(self):
        """A 1:16 ratio materially slows the deprioritized thread.

        Uses the dynamically shared ROB (the paper's fetch-throttling
        setting): with static partitions the co-runner's window fills and
        the deprioritized thread picks up the leftover cycles anyway.
        """
        from dataclasses import replace

        from repro.cpu.config import CoreConfig, PartitionPolicy
        from repro.cpu.sampling import SamplingConfig, mean_uipc, sample_colocation
        from repro.workloads.registry import get_profile

        sampling = SamplingConfig(n_samples=1, warmup_instructions=2000,
                                  measure_instructions=2000, seed=4)
        shared = CoreConfig(rob_policy=PartitionPolicy.SHARED)
        ws, zm = get_profile("web_search"), get_profile("zeusmp")
        fair = sample_colocation(ws, zm, shared, sampling)
        throttled = sample_colocation(
            ws, zm,
            replace(shared, fetch_policy="ratio", fetch_ratio=(1, 16)),
            sampling,
        )
        assert mean_uipc(throttled, 0) < mean_uipc(fair, 0)
