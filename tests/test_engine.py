"""Unit tests for the parallel execution engine and result store.

Fake jobs (cheap, picklable, crash-controllable) exercise the scheduler
without real simulations; the simulation-equivalence property tests live in
``tests/test_engine_parallel.py``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

import pytest

from repro.engine import (
    CACHE_VERSION,
    EngineConfig,
    ExecutionEngine,
    JobTimeoutError,
    ResultStore,
    SimJob,
)
from repro.engine.executor import parse_workers
from repro.engine.telemetry import EngineStats


@dataclass(frozen=True)
class FakeJob:
    """Engine-schedulable job returning a deterministic payload."""

    name: str
    values: tuple[float, ...] = (1.0,)

    @property
    def key(self) -> str:
        return f"fake-{self.name}"

    def run(self) -> tuple[float, ...]:
        return self.values


@dataclass(frozen=True)
class SlowJob:
    name: str
    seconds: float

    @property
    def key(self) -> str:
        return f"slow-{self.name}"

    def run(self) -> tuple[float, ...]:
        time.sleep(self.seconds)
        return (self.seconds,)


@dataclass(frozen=True)
class CrashOnceJob:
    """Kills its worker process on the first attempt, succeeds afterwards."""

    name: str
    sentinel: str  # path marking "already crashed once"

    @property
    def key(self) -> str:
        return f"crash-{self.name}"

    def run(self) -> tuple[float, ...]:
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as handle:
                handle.write("crashed")
            os._exit(13)  # hard worker death, not an exception
        return (99.0,)


@dataclass(frozen=True)
class FailOnceJob:
    """Raises (an ordinary exception) on the first attempt only."""

    name: str
    sentinel: str

    @property
    def key(self) -> str:
        return f"fail-{self.name}"

    def run(self) -> tuple[float, ...]:
        if not os.path.exists(self.sentinel):
            with open(self.sentinel, "w") as handle:
                handle.write("failed")
            raise RuntimeError("transient failure")
        return (7.0,)


class TestJobModel:
    def test_solo_pair_constructors(self, tiny_sampling, base_config):
        solo = SimJob.solo("gamess", base_config, tiny_sampling)
        pair = SimJob.pair("web_search", "gamess", base_config, tiny_sampling)
        assert solo.kind == "solo" and solo.workloads == ("gamess",)
        assert pair.kind == "pair" and pair.workloads == ("web_search", "gamess")

    def test_invalid_kind_and_arity(self, tiny_sampling, base_config):
        with pytest.raises(ValueError):
            SimJob("triple", ("a", "b", "c"), base_config, tiny_sampling)
        with pytest.raises(ValueError):
            SimJob("solo", ("a", "b"), base_config, tiny_sampling)

    def test_key_stability(self, tiny_sampling, base_config):
        job = SimJob.solo("gamess", base_config, tiny_sampling)
        again = SimJob.solo("gamess", base_config, tiny_sampling)
        assert job.key == again.key
        assert len(job.key) == 64 and int(job.key, 16) >= 0

    def test_key_sensitivity(self, tiny_sampling, small_sampling, base_config):
        base = SimJob.solo("gamess", base_config, tiny_sampling)
        assert base.key != SimJob.solo("zeusmp", base_config, tiny_sampling).key
        assert base.key != SimJob.solo("gamess", base_config, small_sampling).key
        pair = SimJob.pair("web_search", "gamess", base_config, tiny_sampling)
        flipped = SimJob.pair("gamess", "web_search", base_config, tiny_sampling)
        assert pair.key != flipped.key

    def test_solo_run_matches_pair_arity(self, tiny_sampling, base_config):
        solo = SimJob.solo("gamess", base_config, tiny_sampling)
        assert len(solo.run()) == 1


class TestResultStore:
    def test_roundtrip_and_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", (1.5, 2.5))
        assert store.get("k1") == (1.5, 2.5)
        entry = tmp_path / f"v{CACHE_VERSION}" / "k1.json"
        assert entry.exists()
        assert json.loads(entry.read_text()) == [1.5, 2.5]
        # No stray tempfiles left behind by the atomic write.
        assert list(tmp_path.glob("**/*.tmp")) == []

    def test_disk_hit_after_memory_flush(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", (3.0,))
        store.clear_memory()
        assert store.get("k1") == (3.0,)
        assert store.stats.disk_hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", (1.0, 2.0))
        entry = tmp_path / f"v{CACHE_VERSION}" / "k1.json"
        entry.write_text('[1.0, 2.')  # truncated mid-write
        store.clear_memory()
        assert store.get("k1") is None
        assert store.stats.corrupt_entries == 1
        assert not entry.exists()  # dropped so a recompute can land cleanly
        # Non-numeric garbage is also a miss, not a crash.
        entry.write_text('{"not": "a list"}')
        assert store.get("k1") is None

    def test_memory_only_store(self):
        store = ResultStore(None)
        store.put("k1", (1.0,))
        assert store.get("k1") == (1.0,)
        assert store.entry_dir is None

    def test_compute_runs_once(self, tmp_path):
        store = ResultStore(tmp_path)
        calls = []

        @dataclass(frozen=True)
        class Recording:
            key: str = "r1"

            def run(self) -> tuple[float, ...]:
                calls.append(1)
                return (4.0,)

        assert store.compute(Recording()) == (4.0,)
        assert store.compute(Recording()) == (4.0,)
        assert len(calls) == 1

    def test_inflight_dedup_across_threads(self, tmp_path):
        store = ResultStore(tmp_path)
        started = threading.Barrier(4)
        calls = []
        lock = threading.Lock()

        @dataclass(frozen=True)
        class Slow:
            key: str = "s1"

            def run(self) -> tuple[float, ...]:
                with lock:
                    calls.append(1)
                time.sleep(0.2)
                return (8.0,)

        results = []

        def worker():
            started.wait()
            results.append(store.compute(Slow()))

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == [(8.0,)] * 4
        assert len(calls) == 1
        assert store.stats.inflight_waits >= 1

    def test_gc_evicts_stale_versions(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("current", (1.0,))
        stale = tmp_path / f"v{CACHE_VERSION - 1}"
        stale.mkdir()
        (stale / "old1.json").write_text("[1.0]")
        (stale / "old2.json").write_text("[2.0]")
        (tmp_path / "legacy.json").write_text("[3.0]")  # pre-engine flat layout
        evicted = store.gc()
        assert evicted == 3
        assert not stale.exists()
        assert not (tmp_path / "legacy.json").exists()
        assert (tmp_path / f"v{CACHE_VERSION}" / "current.json").exists()

    def test_manifest_accumulates(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", (1.0,))
        store.get("missing")
        store.flush_manifest()
        store.put("k2", (2.0,))
        manifest = store.flush_manifest()
        assert manifest["cache_version"] == CACHE_VERSION
        assert manifest["writes"] == 2
        assert manifest["misses"] >= 1
        assert manifest["entries"] == 2
        # flush resets session counters: a third flush adds nothing.
        assert store.flush_manifest()["writes"] == 2

    def test_manifest_persists_job_telemetry(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record_job_telemetry(
            "k1", {"mode": "pool", "seconds": 1.5, "tries": 1, "ts": 100.0}
        )
        manifest = store.flush_manifest()
        assert manifest["jobs"]["k1"]["mode"] == "pool"
        # Records survive across sessions and merge with new ones.
        fresh = ResultStore(tmp_path)
        fresh.record_job_telemetry(
            "k2", {"mode": "serial", "seconds": 0.5, "tries": 1, "ts": 200.0}
        )
        merged = fresh.flush_manifest()
        assert set(merged["jobs"]) == {"k1", "k2"}
        # Flushing resets the session-local records (no double merge).
        assert fresh.job_telemetry == {}

    def test_manifest_job_records_capped_newest_first(self, tmp_path):
        from repro.engine.store import MANIFEST_JOB_LIMIT

        store = ResultStore(tmp_path)
        for i in range(MANIFEST_JOB_LIMIT + 10):
            store.record_job_telemetry(
                f"k{i:04d}", {"mode": "pool", "seconds": 0.0, "tries": 1,
                              "ts": float(i)}
            )
        jobs = store.flush_manifest()["jobs"]
        assert len(jobs) == MANIFEST_JOB_LIMIT
        assert "k0000" not in jobs  # oldest dropped
        assert f"k{MANIFEST_JOB_LIMIT + 9:04d}" in jobs


class TestEngineSerial:
    def test_dedup_and_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(EngineConfig(workers=1))
        jobs = [FakeJob("a", (1.0,)), FakeJob("a", (1.0,)), FakeJob("b", (2.0,))]
        report = engine.run_jobs(jobs, store=store)
        assert report.stats.submitted == 3
        assert report.stats.unique == 2
        assert report.stats.deduplicated == 1
        assert report.stats.executed == 2
        assert report.results == {"fake-a": (1.0,), "fake-b": (2.0,)}
        again = engine.run_jobs(jobs, store=store)
        assert again.stats.cache_hits == 2 and again.stats.executed == 0
        assert again.stats.hit_rate == 1.0

    def test_progress_callback(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(EngineConfig(workers=1))
        snapshots = []
        engine.run_jobs(
            [FakeJob("a"), FakeJob("b")],
            store=store,
            progress=lambda stats: snapshots.append(stats.done),
        )
        assert snapshots[-1] == 2

    def test_parse_workers(self):
        assert parse_workers(3) == 3
        assert parse_workers("2") == 2
        assert parse_workers("auto") >= 1
        with pytest.raises(ValueError):
            parse_workers("0")
        with pytest.raises(ValueError):
            parse_workers("many")


class TestEngineParallelScheduling:
    def test_pool_executes_and_dedups(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(EngineConfig(workers=2))
        jobs = [FakeJob(str(i % 3), (float(i % 3),)) for i in range(9)]
        report = engine.run_jobs(jobs, store=store)
        assert report.stats.unique == 3
        assert report.stats.deduplicated == 6
        assert report.stats.executed == 3
        assert report.results["fake-0"] == (0.0,)

    def test_retry_on_worker_crash(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(EngineConfig(workers=2, retries=2, backoff=0.01))
        sentinel = str(tmp_path / "crashed-once")
        jobs = [CrashOnceJob("x", sentinel), FakeJob("bystander", (5.0,))]
        report = engine.run_jobs(jobs, store=store)
        assert report.results["crash-x"] == (99.0,)
        assert report.results["fake-bystander"] == (5.0,)
        assert report.stats.crash_retries >= 1
        assert report.stats.pool_rebuilds >= 1
        assert report.stats.executed == 2

    def test_retry_on_job_exception(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(EngineConfig(workers=2, retries=2, backoff=0.01))
        sentinel = str(tmp_path / "failed-once")
        report = engine.run_jobs([FailOnceJob("y", sentinel)], store=store)
        assert report.results["fail-y"] == (7.0,)
        assert report.stats.failure_retries == 1

    def test_deterministic_exception_propagates(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(EngineConfig(workers=2, retries=1, backoff=0.01))

        with pytest.raises(RuntimeError, match="always fails"):
            engine.run_jobs([AlwaysFailJob("z")], store=store)

    def test_timeout_raises_after_retries(self, tmp_path):
        store = ResultStore(tmp_path)
        engine = ExecutionEngine(
            EngineConfig(workers=2, timeout=0.3, retries=0, backoff=0.01)
        )
        start = time.monotonic()
        with pytest.raises(JobTimeoutError):
            engine.run_jobs([SlowJob("t", 30.0)], store=store)
        assert time.monotonic() - start < 10.0  # pool was torn down, not joined

    def test_fallback_when_pool_unavailable(self, tmp_path):
        store = ResultStore(tmp_path)

        def broken_factory(workers):
            raise OSError("no process spawning here")

        engine = ExecutionEngine(
            EngineConfig(workers=4), pool_factory=broken_factory
        )
        report = engine.run_jobs([FakeJob("a", (1.0,)), FakeJob("b")], store=store)
        assert report.stats.executed == 2
        assert report.stats.in_process == 2
        assert report.results["fake-a"] == (1.0,)


@dataclass(frozen=True)
class AlwaysFailJob:
    name: str

    @property
    def key(self) -> str:
        return f"always-{self.name}"

    def run(self) -> tuple[float, ...]:
        raise RuntimeError("always fails")


class TestTelemetry:
    def test_derived_counters(self):
        stats = EngineStats(workers=2, unique=10, cache_hits=4, executed=3,
                            running=2)
        assert stats.done == 7
        assert stats.queued == 1
        assert stats.hit_rate == 0.4
        payload = stats.as_dict()
        assert payload["done"] == 7 and payload["hit_rate"] == 0.4
        assert payload["queued"] == 1  # derived field exported too

    def test_summary_mentions_key_counts(self):
        stats = EngineStats(workers=3, unique=5, cache_hits=2, executed=3,
                            deduplicated=1, crash_retries=1, wall_time=1.25)
        text = stats.summary()
        assert "5 jobs" in text and "2 cached" in text and "retried" in text
        assert "pool rebuild" not in text

    def test_summary_reports_pool_rebuilds(self):
        stats = EngineStats(workers=3, unique=5, executed=5, pool_rebuilds=2)
        assert "2 pool rebuild(s)" in stats.summary()
