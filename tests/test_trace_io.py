"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.cpu.trace import Trace
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = generate_trace(get_profile("mcf"), 2000, seed=3)
        path = tmp_path / "mcf.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.name == "mcf"
        for column in ("op", "dep1", "dep2", "pc", "addr", "taken", "target", "sid"):
            assert np.array_equal(getattr(loaded, column), getattr(trace, column))

    def test_loaded_trace_validates(self, tmp_path):
        trace = generate_trace(get_profile("web_search"), 1000, seed=1)
        path = tmp_path / "t.npz"
        trace.save(path)
        Trace.load(path).validate()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Trace.load(tmp_path / "absent.npz")

    def test_compressed_smaller_than_raw(self, tmp_path):
        trace = generate_trace(get_profile("gamess"), 5000, seed=1)
        path = tmp_path / "g.npz"
        trace.save(path)
        raw_bytes = sum(
            getattr(trace, c).nbytes
            for c in ("op", "dep1", "dep2", "pc", "addr", "taken", "target", "sid")
        )
        assert path.stat().st_size < raw_bytes

    def test_loaded_trace_runs(self, tmp_path):
        from repro.cpu.config import CoreConfig
        from repro.cpu.smt_core import SMTCore

        trace = generate_trace(get_profile("gamess"), 3000, seed=1)
        path = tmp_path / "g.npz"
        trace.save(path)
        core = SMTCore(CoreConfig().single_thread(192), (Trace.load(path),))
        result = core.run(500, warmup_instructions=200)
        assert result.threads[0].instructions >= 500
