"""Tests for workload profiles and the registry."""

from dataclasses import replace

import pytest

from repro.workloads.cloudsuite import CLOUDSUITE, cloudsuite_profile
from repro.workloads.profiles import QoSSpec, WorkloadKind, WorkloadProfile
from repro.workloads.registry import all_profiles, get_profile
from repro.workloads.spec2006 import SPEC2006, SPEC2006_NAMES, spec_profile


def make_batch(**overrides) -> WorkloadProfile:
    return WorkloadProfile(
        name="b", kind=WorkloadKind.BATCH, description="test", **overrides
    )


class TestQoSSpec:
    def test_valid(self):
        QoSSpec(target_ms=100, percentile=99, base_service_ms=5)

    def test_service_must_be_below_target(self):
        with pytest.raises(ValueError):
            QoSSpec(target_ms=10, percentile=99, base_service_ms=20)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            QoSSpec(target_ms=10, percentile=40, base_service_ms=1)

    def test_positive_latencies(self):
        with pytest.raises(ValueError):
            QoSSpec(target_ms=-1, percentile=99, base_service_ms=1)


class TestWorkloadProfile:
    def test_frac_branch_from_block_length(self):
        p = make_batch(block_len_mean=10.0)
        assert p.frac_branch == pytest.approx(0.1)

    def test_mix_must_leave_room_for_alu(self):
        with pytest.raises(ValueError):
            make_batch(frac_load=0.5, frac_store=0.3, frac_fp=0.3)

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_batch(frac_load=-0.1)
        with pytest.raises(ValueError):
            make_batch(cold_miss_frac=1.5)

    def test_memory_categories_cannot_exceed_one(self):
        with pytest.raises(ValueError):
            make_batch(streaming_frac=0.5, cold_miss_frac=0.4, pointer_chase_frac=0.2)

    def test_branch_predictability_bounds(self):
        with pytest.raises(ValueError):
            make_batch(branch_predictability=0.3)

    def test_hot_region_within_footprint(self):
        with pytest.raises(ValueError):
            make_batch(data_footprint_kb=16, hot_region_kb=32)

    def test_block_length_minimum(self):
        with pytest.raises(ValueError):
            make_batch(block_len_mean=1.0)

    def test_code_zipf_bounds(self):
        with pytest.raises(ValueError):
            make_batch(code_zipf=5.0)

    def test_ls_requires_qos(self):
        with pytest.raises(ValueError, match="QoSSpec"):
            WorkloadProfile(
                name="x", kind=WorkloadKind.LATENCY_SENSITIVE, description="d"
            )

    def test_batch_must_not_carry_qos(self):
        with pytest.raises(ValueError):
            make_batch(qos=QoSSpec(target_ms=10, percentile=99, base_service_ms=1))

    def test_is_latency_sensitive(self):
        assert get_profile("web_search").is_latency_sensitive
        assert not get_profile("zeusmp").is_latency_sensitive


class TestSuites:
    def test_exactly_29_spec_benchmarks(self):
        assert len(SPEC2006) == 29
        assert len(SPEC2006_NAMES) == 29

    def test_expected_spec_members(self):
        for name in ("zeusmp", "lbm", "mcf", "gamess", "povray", "xalancbmk",
                     "perlbench", "libquantum", "h264ref", "GemsFDTD"):
            assert name in SPEC2006

    def test_all_spec_are_batch(self):
        assert all(p.kind is WorkloadKind.BATCH for p in SPEC2006.values())

    def test_exactly_4_cloudsuite_services(self):
        assert set(CLOUDSUITE) == {
            "data_serving", "web_serving", "web_search", "media_streaming"
        }

    def test_all_cloudsuite_have_qos(self):
        assert all(p.qos is not None for p in CLOUDSUITE.values())

    def test_table1_targets(self):
        # Paper Table I: 20ms p99, 1s p95, 100ms p99, 2s timeout.
        assert CLOUDSUITE["data_serving"].qos.target_ms == 20.0
        assert CLOUDSUITE["web_serving"].qos.target_ms == 1000.0
        assert CLOUDSUITE["web_serving"].qos.percentile == 95.0
        assert CLOUDSUITE["web_search"].qos.target_ms == 100.0
        assert CLOUDSUITE["web_search"].qos.percentile == 99.0
        assert CLOUDSUITE["media_streaming"].qos.target_ms == 2000.0

    def test_server_signature_low_mlp(self):
        # Server workloads chase pointers; high-MLP batch does not (much).
        assert CLOUDSUITE["web_search"].pointer_chase_frac > 0
        assert SPEC2006["zeusmp"].pointer_chase_frac == 0.0

    def test_lbm_is_streaming_outlier(self):
        lbm = SPEC2006["lbm"]
        assert lbm.streaming_frac >= max(
            p.streaming_frac for n, p in SPEC2006.items() if n != "lbm"
        )

    def test_registry_merges_both_suites(self):
        merged = all_profiles()
        assert len(merged) == 33

    def test_lookup_helpers(self):
        assert spec_profile("mcf").name == "mcf"
        assert cloudsuite_profile("web_search").name == "web_search"
        assert get_profile("lbm").name == "lbm"

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError):
            spec_profile("doom3")
        with pytest.raises(KeyError):
            cloudsuite_profile("bitcoin")
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_profiles_are_frozen_and_replaceable(self):
        p = get_profile("zeusmp")
        q = replace(p, cold_miss_frac=0.01)
        assert q.cold_miss_frac == 0.01
        assert p.cold_miss_frac != 0.01
