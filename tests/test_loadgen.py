"""Tests for parametric load patterns."""

import pytest

from repro.core.colocation import ColocationPerformance, ModePerformance
from repro.core.server import ColocatedServer
from repro.core.stretch import StretchMode
from repro.qos.loadgen import (
    clamp,
    compose_max,
    constant,
    flash_crowd,
    sinusoidal,
    step,
)
from repro.workloads.registry import get_profile


class TestPatterns:
    def test_constant(self):
        fn = constant(0.4)
        assert fn(0) == fn(12.7) == 0.4

    def test_constant_bounds(self):
        with pytest.raises(ValueError):
            constant(1.5)

    def test_step(self):
        fn = step(0.2, 0.9, at_hour=8.0)
        assert fn(7.99) == 0.2
        assert fn(8.0) == 0.9
        assert fn(23.0) == 0.9
        assert fn(24.5) == 0.2  # wraps into the next day

    def test_flash_crowd_shape(self):
        fn = flash_crowd(base=0.3, peak=1.0, at_hour=12.0, decay_hours=1.0)
        assert fn(11.0) == pytest.approx(0.3)
        assert fn(12.0) == pytest.approx(1.0)
        assert 0.3 < fn(13.0) < 1.0
        assert fn(18.0) == pytest.approx(0.3, abs=0.01)

    def test_flash_crowd_validation(self):
        with pytest.raises(ValueError):
            flash_crowd(base=0.8, peak=0.5, at_hour=3)

    def test_sinusoidal_peak_position(self):
        fn = sinusoidal(mean=0.6, amplitude=0.3, peak_hour=14.0)
        assert fn(14.0) == pytest.approx(0.9)
        assert fn(2.0) == pytest.approx(0.3)

    def test_sinusoidal_validation(self):
        with pytest.raises(ValueError):
            sinusoidal(mean=0.2, amplitude=0.5)

    def test_compose_max(self):
        fn = compose_max([constant(0.3), flash_crowd(0.0, 1.0, at_hour=6.0)])
        assert fn(0.0) == pytest.approx(0.3)
        assert fn(6.0) == pytest.approx(1.0)

    def test_compose_requires_input(self):
        with pytest.raises(ValueError):
            compose_max([])

    def test_clamp(self):
        fn = clamp(step(-0.5, 1.5, at_hour=12.0))
        assert fn(3.0) == 0.0
        assert fn(13.0) == 1.0
        with pytest.raises(ValueError):
            clamp(constant(0.5), lo=0.9, hi=0.1)


class TestClosedLoopWithPatterns:
    def make_server(self) -> ColocatedServer:
        performance = ColocationPerformance(
            ls_workload="web_search", batch_workload="zeusmp",
            ls_solo_uipc=0.6,
            per_mode={
                StretchMode.BASELINE: ModePerformance(0.52, 0.50),
                StretchMode.B_MODE: ModePerformance(0.46, 0.58),
                StretchMode.Q_MODE: ModePerformance(0.58, 0.40),
            },
        )
        return ColocatedServer(get_profile("web_search"), performance, seed=13)

    def test_flash_crowd_forces_mode_retreat(self):
        """A spike mid-day pulls the server out of B-mode."""
        fn = compose_max([constant(0.25),
                          flash_crowd(0.0, 1.05, at_hour=12.0, decay_hours=2.0)])
        timeline = self.make_server().run_day(
            clamp(fn, hi=1.1), window_minutes=30, requests_per_window=600
        )
        before = [w for w in timeline.windows if 8 <= w.hour < 11.5]
        during = [w for w in timeline.windows if 12 <= w.hour < 13.5]
        b_before = sum(w.mode is StretchMode.B_MODE for w in before) / len(before)
        b_during = sum(w.mode is StretchMode.B_MODE for w in during) / len(during)
        assert b_before > b_during
