"""Metamorphic relations: paper-derived directional properties of the model."""

from repro.check.metamorphic import (
    check_corunner_never_helps,
    check_mode_ordering,
    check_rob_monotonicity,
    run_metamorphic_suite,
)


class TestRelations:
    def test_rob_monotonicity_holds(self):
        report = check_rob_monotonicity(
            rob_sizes=(16, 48, 96, 192), length=5000, warmup=1500, measure=3000
        )
        assert report.holds, report.summary()

    def test_corunner_never_helps(self):
        report = check_corunner_never_helps(
            length=5000, warmup=1500, measure=3000
        )
        assert report.holds, report.summary()

    def test_mode_ordering(self):
        report = check_mode_ordering(length=5000, warmup=1500, measure=3000)
        assert report.holds, report.summary()

    def test_suite_runs_all_relations(self):
        reports = run_metamorphic_suite()
        assert [r.name for r in reports] == [
            "rob_monotonicity", "corunner_never_helps", "mode_ordering"
        ]
        assert all(r.holds for r in reports), [r.summary() for r in reports]

    def test_violation_reporting(self):
        # An impossible tolerance manufactures a violation so the report
        # path (holds=False + observations) is covered.
        report = check_mode_ordering(
            length=4000, warmup=1000, measure=2000, tolerance=-1.0
        )
        assert not report.holds
        assert any("uipc" in obs for obs in report.observations)
