#!/usr/bin/env python3
"""Slack analysis: how much core performance can each service give up?

Reproduces the paper's §II study against the queueing substrate:

1. latency-versus-load curves for Web Search (Figure 1) with its 100 ms
   p99 target, and
2. the minimum performance factor that still meets QoS across loads for
   all four latency-sensitive services (Figure 2) — the slack Stretch's
   B-mode exploits.

Usage:  python examples/slack_analysis.py
"""

from repro.qos.queueing import ServiceSimulator
from repro.qos.slack import DutyCycleModulator, slack_curve
from repro.workloads import CLOUDSUITE, get_profile

LOADS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


def latency_vs_load() -> None:
    profile = get_profile("web_search")
    service = ServiceSimulator(profile.qos, n_workers=8, seed=7)
    print(f"Web Search latency vs load (p99 target {profile.qos.target_ms:.0f} ms)")
    print(f"{'load':>6} {'mean':>8} {'p95':>8} {'p99':>8}")
    for load, stats in service.latency_vs_load(LOADS + [1.0], n_requests=12000):
        print(f"{load:>6.0%} {stats.mean:>8.1f} {stats.p95:>8.1f} {stats.p99:>8.1f}")
    print()


def slack_curves() -> None:
    print("Minimum performance (fraction of a full core) that still meets QoS")
    curves = {
        name: dict(slack_curve(profile, LOADS, n_requests=8000))
        for name, profile in CLOUDSUITE.items()
    }
    names = list(curves)
    print(f"{'load':>6} " + " ".join(f"{n:>16}" for n in names))
    for load in LOADS:
        row = " ".join(f"{curves[n][load]:>16.2f}" for n in names)
        print(f"{load:>6.0%} {row}")

    modulator = DutyCycleModulator()
    print("\nExample: at 30% load, Web Search needs only "
          f"{curves['web_search'][0.3]:.0%} of full-core performance — an "
          f"Elfen-style duty cycle of "
          f"{modulator.duty_for_performance(curves['web_search'][0.3]):.0%}.")
    print("Everything above that line is slack Stretch's B-mode can hand "
          "to a batch co-runner.")


if __name__ == "__main__":
    latency_vs_load()
    slack_curves()
