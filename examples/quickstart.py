#!/usr/bin/env python3
"""Quickstart: measure one colocated pair under every Stretch mode.

Runs a Web Search (latency-sensitive) thread against zeusmp (the paper's
high-ROB-sensitivity batch exemplar) on the simulated SMT core, under

* Baseline  — equal 96-96 ROB partitioning (Intel-style),
* B-mode    — the paper's 56-136 batch-boost split,
* Q-mode    — the mirror 136-56 QoS-boost split,

and prints the per-mode UIPC of both threads plus the derived trade-off,
reproducing the §VI-A headline in miniature.

Usage:  python examples/quickstart.py [ls_workload] [batch_workload]
"""

import sys

from repro import StretchMode, get_profile, measure


def main() -> None:
    ls_name = sys.argv[1] if len(sys.argv) > 1 else "web_search"
    batch_name = sys.argv[2] if len(sys.argv) > 2 else "zeusmp"
    ls, batch = get_profile(ls_name), get_profile(batch_name)
    if not ls.is_latency_sensitive:
        raise SystemExit(f"{ls_name} is not a latency-sensitive workload")

    print(f"Colocating {ls.name} (latency-sensitive) with {batch.name} (batch)")
    print("Simulating Baseline / B-mode 56-136 / Q-mode 136-56 ...\n")

    performance = measure(ls, batch, n_samples=3, seed=42)

    print(f"{ls.name} stand-alone full-core UIPC: {performance.ls_solo_uipc:.3f}\n")
    header = f"{'mode':<10} {'LS UIPC':>8} {'LS perf factor':>15} {'batch UIPC':>11} {'batch speedup':>14}"
    print(header)
    print("-" * len(header))
    for mode in StretchMode:
        m = performance.per_mode[mode]
        print(
            f"{mode.value:<10} {m.ls_uipc:>8.3f} "
            f"{performance.ls_perf_factor(mode):>15.3f} "
            f"{m.batch_uipc:>11.3f} {performance.batch_speedup(mode):>+14.1%}"
        )

    b_gain = performance.batch_speedup(StretchMode.B_MODE)
    ls_cost = 1.0 - (
        performance.per_mode[StretchMode.B_MODE].ls_uipc
        / performance.per_mode[StretchMode.BASELINE].ls_uipc
    )
    print(
        f"\nStretch B-mode trades {ls_cost:.1%} of the latency-sensitive "
        f"thread's performance for a {b_gain:+.1%} batch speedup."
    )
    print(
        "At sub-peak service load, the QoS slack absorbs that loss "
        "(see examples/slack_analysis.py)."
    )


if __name__ == "__main__":
    main()
