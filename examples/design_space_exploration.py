#!/usr/bin/env python3
"""Design-space exploration: choosing the B-mode skew at design time.

Stretch provisions its asymmetric configurations when the processor is
designed (§IV-D "Number of configurations").  This example sweeps every
candidate B-mode skew for one colocation, measures the LS-loss /
batch-gain trade-off, then uses the slack analysis to report the highest
service load at which each skew remains QoS-safe — the information an
architect needs to pick which configurations to provision.

Usage:  python examples/design_space_exploration.py [ls] [batch]
"""

import sys

from repro import SamplingConfig, get_profile
from repro.core.partitioning import B_MODES, BASELINE
from repro.cpu.config import CoreConfig
from repro.cpu.sampling import mean_uipc, sample_colocation, sample_solo
from repro.qos.queueing import ServiceSimulator
from repro.qos.slack import required_performance


def max_safe_load(service: ServiceSimulator, perf_factor: float) -> float:
    """Highest load (fraction of peak) at which ``perf_factor`` meets QoS."""
    safe = 0.0
    for step in range(1, 21):
        load = step / 20.0
        if required_performance(service, load, n_requests=6000) <= perf_factor:
            safe = load
        else:
            break
    return safe


def main() -> None:
    ls_name = sys.argv[1] if len(sys.argv) > 1 else "web_search"
    batch_name = sys.argv[2] if len(sys.argv) > 2 else "zeusmp"
    ls, batch = get_profile(ls_name), get_profile(batch_name)
    sampling = SamplingConfig(n_samples=3, seed=42)
    base = CoreConfig()

    print(f"Sweeping B-mode skews for {ls.name} + {batch.name}\n")
    ls_solo = mean_uipc(sample_solo(ls, base.single_thread(192), sampling))
    baseline = sample_colocation(ls, batch, BASELINE.apply(base), sampling)
    ls_base, batch_base = mean_uipc(baseline, 0), mean_uipc(baseline, 1)

    service = ServiceSimulator(ls.qos, n_workers=8, seed=3)
    rows = []
    for scheme in (BASELINE, *B_MODES):
        results = sample_colocation(ls, batch, scheme.apply(base), sampling)
        ls_uipc, batch_uipc = mean_uipc(results, 0), mean_uipc(results, 1)
        factor = min(ls_uipc / ls_solo, 1.0)
        rows.append((
            scheme.name,
            1.0 - ls_uipc / ls_base,
            batch_uipc / batch_base - 1.0,
            factor,
            max_safe_load(service, factor),
        ))

    header = (f"{'skew (LS-batch)':<16} {'LS loss':>9} {'batch gain':>11} "
              f"{'LS perf factor':>15} {'QoS-safe up to':>15}")
    print(header)
    print("-" * len(header))
    for name, loss, gain, factor, safe in rows:
        print(f"{name:<16} {loss:>+9.1%} {gain:>+11.1%} {factor:>15.2f} "
              f"{safe:>14.0%} load")

    print(
        "\nReading: deeper skews buy more batch throughput but shrink the "
        "load range where the service still meets its tail-latency target."
        "\nThe paper provisions 56-136 as the default B-mode: a mid-curve "
        "point that stays safe through moderate load."
    )


if __name__ == "__main__":
    main()
