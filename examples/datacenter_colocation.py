#!/usr/bin/env python3
"""A day in the life of a colocated server (closed loop, paper §IV-C / §VI-D).

Simulates 24 hours of a Web Search service colocated with a batch job on one
SMT core:

* request load follows the Web Search cluster's diurnal pattern;
* the CPI²-extended software monitor watches windowed p99 latency and
  programs the Stretch control register (Baseline / B-mode / Q-mode);
* batch throughput accrues according to the engaged mode.

Prints an hourly timeline and the daily summary the paper's Figure 14 case
study reports.  With ``--adaptive``, the multi-B-mode adaptive policy
(§IV-D extension) replaces the two-point monitor: each window it engages
the deepest provisioned skew whose predicted tail stays inside the QoS
budget.

Usage:  python examples/datacenter_colocation.py [batch_workload] [--adaptive]
"""

import sys

from repro import StretchMode, get_profile, measure
from repro.api import run_day
from repro.core.adaptive import AdaptiveStretchPolicy
from repro.core.partitioning import B_MODES

MODE_GLYPH = {
    StretchMode.BASELINE: "=",
    StretchMode.B_MODE: "B",
    StretchMode.Q_MODE: "Q",
}


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    adaptive = "--adaptive" in sys.argv
    batch_name = args[0] if args else "zeusmp"
    ls = get_profile("web_search")
    batch = get_profile(batch_name)

    print(f"Measuring per-mode performance of {ls.name} + {batch.name} ...")
    performance = measure(ls, batch, n_samples=3, seed=42)
    for mode in StretchMode:
        m = performance.per_mode[mode]
        print(f"  {mode.value:<9} LS factor {performance.ls_perf_factor(mode):.2f}, "
              f"batch UIPC {m.batch_uipc:.3f}")

    label = "adaptive multi-B-mode policy" if adaptive else "two-point monitor"
    print(f"\nSimulating 24 hours (10-minute windows, {label}) ...")
    policy = (
        AdaptiveStretchPolicy(ls.qos, performance, tuple(B_MODES))
        if adaptive else None
    )
    timeline = run_day(
        ls, performance=performance, load="web_search", adaptive=policy,
        window_minutes=10, requests_per_window=1200, seed=11,
    )

    print("\nhour  load  mode-per-window                     p99(ms)")
    per_hour = 6  # 10-minute windows
    for hour in range(24):
        windows = timeline.windows[hour * per_hour:(hour + 1) * per_hour]
        glyphs = "".join(MODE_GLYPH[w.mode] + ("!" if w.qos_violated else "")
                         for w in windows)
        load = windows[0].load_fraction
        p99 = max(w.tail_latency_ms for w in windows)
        print(f"{hour:>4}  {load:>4.0%}  {glyphs:<36}{p99:>8.1f}")

    baseline_uipc = performance.per_mode[StretchMode.BASELINE].batch_uipc
    print(f"\nB-mode engaged {timeline.bmode_fraction:.0%} of the day")
    print(f"QoS violation rate: {timeline.violation_rate:.1%} of windows")
    print(f"Batch throughput vs always-Baseline: "
          f"{timeline.batch_throughput_gain(baseline_uipc):+.1%}")
    print(f"Mode switches ordered by the monitor: "
          f"{sum(1 for a, b in zip(timeline.windows, timeline.windows[1:]) if a.mode is not b.mode)}")
    print("\nLegend: '=' Baseline, 'B' B-mode, 'Q' Q-mode, '!' QoS violation")


if __name__ == "__main__":
    main()
