#!/usr/bin/env python3
"""Cluster capacity planning with Stretch enabled.

A capacity planner's question: given a diurnal service, how much
over-provisioning does a Stretch-enabled cluster need?  More headroom means
more QoS safety *and* more slack for B-mode batch throughput — but idle
capacity costs money.  This example sweeps the over-provisioning factor of
a Web Search cluster and reports, per point:

* cluster QoS violation rate (fraction of server-windows over target),
* fraction of server-windows spent in B-mode,
* cluster batch-throughput gain vs an always-Baseline pool.

Usage:  python examples/cluster_capacity.py [batch_workload]
"""

import sys

from repro import StretchMode, get_profile, measure
from repro.api import run_fleet

OVERPROVISION_POINTS = (1.0, 1.1, 1.25, 1.5, 2.0)


def main() -> None:
    batch_name = sys.argv[1] if len(sys.argv) > 1 else "zeusmp"
    ls = get_profile("web_search")
    batch = get_profile(batch_name)

    print(f"Measuring {ls.name} + {batch.name} per-mode performance ...")
    performance = measure(ls, batch, n_samples=3, seed=42)
    baseline_uipc = performance.per_mode[StretchMode.BASELINE].batch_uipc

    print("\nSweeping cluster over-provisioning (4 servers, 20-min windows)\n")
    header = (f"{'overprov':>9} {'violations':>11} {'B-mode time':>12} "
              f"{'batch gain':>11}")
    print(header)
    print("-" * len(header))
    for factor in OVERPROVISION_POINTS:
        day = run_fleet(
            ls, performance=performance, load="web_search", engine="legacy",
            n_servers=4, overprovision=factor, seed=17,
            window_minutes=20, requests_per_window=1000,
        )
        print(
            f"{factor:>9.2f} {day.violation_rate:>11.1%} "
            f"{day.bmode_fraction:>12.0%} "
            f"{day.batch_throughput_gain(baseline_uipc):>11.1%}"
        )

    print(
        "\nReading: tight provisioning (1.0x) runs servers near peak — QoS "
        "violations appear and B-mode rarely engages.  Headroom converts "
        "directly into safe B-mode hours, which is how Stretch turns the "
        "cost of over-provisioning back into batch throughput."
    )


if __name__ == "__main__":
    main()
