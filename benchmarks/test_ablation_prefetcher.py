"""Ablation: the L1-D stride prefetcher (Table II).

lbm is the paper's streaming workload; without the stride prefetcher its
sequential sweeps miss on every line.  This ablation quantifies how much of
lbm's performance — and its L1-D bullying of co-runners — the prefetcher
accounts for.
"""

from dataclasses import replace

from repro.cpu.config import CoreConfig
from repro.experiments.common import config_solo, pair_uipc, solo_uipc


def run_ablation(sampling):
    on_solo = config_solo()
    off_solo = replace(on_solo, enable_prefetcher=False)
    lbm_on = solo_uipc("lbm", on_solo, sampling)
    lbm_off = solo_uipc("lbm", off_solo, sampling)

    on_pair = CoreConfig()
    off_pair = replace(on_pair, enable_prefetcher=False)
    ws_on, __ = pair_uipc("web_search", "lbm", on_pair, sampling)
    ws_off, __ = pair_uipc("web_search", "lbm", off_pair, sampling)
    return lbm_on, lbm_off, ws_on, ws_off


def test_ablation_prefetcher(benchmark, fidelity, save_result):
    lbm_on, lbm_off, ws_on, ws_off = benchmark.pedantic(
        run_ablation, args=(fidelity.sampling,), rounds=1, iterations=1
    )
    text = "\n".join([
        "Ablation: stride prefetcher on/off",
        f"lbm solo UIPC:          {lbm_on:.3f} (on)  {lbm_off:.3f} (off)  "
        f"-> prefetcher worth {lbm_on / lbm_off - 1:+.1%}",
        f"web_search UIPC vs lbm: {ws_on:.3f} (on)  {ws_off:.3f} (off)",
    ])
    save_result("ablation_prefetcher", text)

    # The prefetcher is a major factor for the streaming workload.
    assert lbm_on > lbm_off * 1.10
    # Both runs keep the co-runner alive.
    assert ws_on > 0 and ws_off > 0
