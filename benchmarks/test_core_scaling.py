"""Core engine benchmark: legacy ``SMTCore`` vs ``FastCore`` cycles/sec.

Times both execution engines on the same traces across the four corners of
the workload space — solo/pair × compute-bound/memory-bound — with GC
disabled and interleaved repeats (median of ``REPEATS``), asserting
bit-identical ``SimulationResult``s along the way, and persists the
throughput numbers to ``benchmarks/results/BENCH_core.json``.

The JSON doubles as the CI perf baseline: before overwriting it, the test
compares each scenario's measured speedup (fast/legacy — a machine-relative
ratio, so it transfers across hosts where absolute cycles/sec do not)
against the committed value and fails on a >25 % regression.  Refresh the
baseline by committing the regenerated file after an intentional change.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path

from repro.cpu.config import CoreConfig
from repro.cpu.fast_core import FastCore
from repro.cpu.smt_core import SMTCore
from repro.engine.store import reset_default_stores
from repro.experiments.common import (
    Fidelity,
    config_all_shared,
    config_solo,
    pair_uipc_many,
    solo_uipc_many,
)
from repro.experiments.fig06_rob_sensitivity import ROB_SIZES
from repro.experiments.fig09_stretch_modes import ALL_SCHEMES
from repro.util.rng import derive_seed
from repro.workloads import all_profiles
from repro.workloads.generator import TraceGenerator

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_PATH = RESULTS_DIR / "BENCH_core.json"

#: Four corners of the workload space.  Memory-bound scenarios are where
#: event-horizon skipping matters most (long idle gaps under MLP limits);
#: compute-bound ones bound the constant-factor win of the flattened loop.
SCENARIOS = (
    ("solo_compute", ("gamess",)),
    ("solo_memory", ("mcf",)),
    ("pair_compute", ("gamess", "namd")),
    ("pair_memory", ("mcf", "milc")),
)

WARMUP_INSTRUCTIONS = 4000
MEASURE_INSTRUCTIONS = 10000
REPEATS = 5

#: Fail CI when a scenario's speedup drops >25 % below the committed value.
REGRESSION_TOLERANCE = 0.25

#: Representative grid slice for the surrogate-tier sweep entries: one LS
#: and one batch fig06 ROB sweep plus one fig09 skew sweep — small enough
#: for CI, same shape as the full figures.  The acceptance criterion is on
#: the *warm* path (fits already in the store): a cold fit costs more
#: exact jobs than the 12-point sweep it replaces (DESIGN.md §8).
SURROGATE_SOLO_WORKLOADS = ("web_search", "zeusmp")
SURROGATE_PAIR = ("web_search", "zeusmp")
MIN_SURROGATE_WARM_SPEEDUP = 5.0


def _traces(names):
    profiles = all_profiles()
    length = 7 * (WARMUP_INSTRUCTIONS + MEASURE_INSTRUCTIONS) + 1024
    return tuple(
        TraceGenerator(
            profiles[name], seed=derive_seed(42, name, "bench", slot)
        ).generate(length)
        for slot, name in enumerate(names)
    )


def _bench_scenario(names):
    """Interleaved legacy/fast timing; returns (legacy_cps, fast_cps)."""
    traces = _traces(names)
    config = CoreConfig() if len(names) > 1 else CoreConfig().single_thread(96)
    require_all = len(names) > 1
    timings = {SMTCore: [], FastCore: []}
    results = {}
    for _ in range(REPEATS):
        for cls in (SMTCore, FastCore):
            core = cls(config, traces)
            gc.collect()
            start = time.perf_counter()
            result = core.run(
                MEASURE_INSTRUCTIONS,
                warmup_instructions=WARMUP_INSTRUCTIONS,
                max_cycles=MEASURE_INSTRUCTIONS * 1200,
                require_all_threads=require_all,
            )
            elapsed = time.perf_counter() - start
            timings[cls].append(core.cycle / elapsed)
            results[cls] = (result, core.cycle)
    assert results[SMTCore] == results[FastCore], (
        f"{'+'.join(names)}: engines diverged — FastCore must be "
        "bit-identical to SMTCore"
    )
    return (
        statistics.median(timings[SMTCore]),
        statistics.median(timings[FastCore]),
    )


def _sweep_surrogate_tier(tmp_path, monkeypatch) -> dict:
    """Time the representative grid at quick-exact vs surrogate tier.

    Both tiers run against fresh stores under ``tmp_path`` (this machine's
    default store may hold warm results, which would time cache hits, not
    simulation); the warm measurement reuses the surrogate run's store so
    only the NumPy evaluation is timed.
    """
    solo_configs = [config_solo(size) for size in ROB_SIZES]
    base = config_all_shared()
    pair_configs = [base] + [s.apply(base) for s in ALL_SCHEMES]

    def sweep(fid):
        for workload in SURROGATE_SOLO_WORKLOADS:
            solo_uipc_many(workload, solo_configs, fid)
        pair_uipc_many(*SURROGATE_PAIR, pair_configs, fid)

    def timed(cache_name, fid):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / cache_name))
        reset_default_stores()
        start = time.perf_counter()
        sweep(fid)
        return time.perf_counter() - start

    exact_s = timed("exact", Fidelity.quick(42))
    cold_s = timed("surrogate", Fidelity.surrogate(42))
    start = time.perf_counter()  # same store: fits are warm now
    sweep(Fidelity.surrogate(42))
    warm_s = time.perf_counter() - start
    reset_default_stores()
    return {
        "solo_workloads": list(SURROGATE_SOLO_WORKLOADS),
        "pair": list(SURROGATE_PAIR),
        "grid_points": len(solo_configs) * len(SURROGATE_SOLO_WORKLOADS)
        + len(pair_configs),
        "exact_s": round(exact_s, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(exact_s / warm_s, 1),
        "min_warm_speedup": MIN_SURROGATE_WARM_SPEEDUP,
    }


def _load_baseline() -> dict:
    if not BENCH_PATH.exists():
        return {}
    try:
        return json.loads(BENCH_PATH.read_text()).get("scenarios", {})
    except (json.JSONDecodeError, AttributeError):
        return {}


def test_core_scaling(save_result, tmp_path, monkeypatch):
    baseline = _load_baseline()
    surrogate = _sweep_surrogate_tier(tmp_path, monkeypatch)
    gc.disable()
    try:
        scenarios = {}
        regressions = []
        for name, workloads in SCENARIOS:
            legacy_cps, fast_cps = _bench_scenario(workloads)
            speedup = fast_cps / legacy_cps
            scenarios[name] = {
                "workloads": list(workloads),
                "legacy_cps": round(legacy_cps),
                "fast_cps": round(fast_cps),
                "speedup": round(speedup, 2),
            }
            prior = baseline.get(name, {}).get("speedup")
            if prior and speedup < prior * (1.0 - REGRESSION_TOLERANCE):
                regressions.append(
                    f"{name}: speedup {speedup:.2f}x is >"
                    f"{REGRESSION_TOLERANCE:.0%} below committed baseline "
                    f"{prior:.2f}x"
                )
    finally:
        gc.enable()

    payload = {
        "warmup_instructions": WARMUP_INSTRUCTIONS,
        "measure_instructions": MEASURE_INSTRUCTIONS,
        "repeats": REPEATS,
        "scenarios": scenarios,
        "surrogate": surrogate,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    save_result(
        "core_scaling",
        "\n".join(
            f"{name}: legacy {s['legacy_cps']}/s fast {s['fast_cps']}/s "
            f"= {s['speedup']}x"
            for name, s in scenarios.items()
        )
        + (
            f"\nsurrogate sweep ({surrogate['grid_points']} points): "
            f"exact {surrogate['exact_s']}s cold {surrogate['cold_s']}s "
            f"warm {surrogate['warm_s']}s = {surrogate['warm_speedup']}x warm"
        ),
    )

    assert not regressions, "; ".join(regressions)
    # Absolute floor: the fast engine must never lose to the legacy one by
    # more than timing noise, on any scenario shape.
    for name, s in scenarios.items():
        assert s["speedup"] > 1.0, (
            f"{name}: FastCore slower than legacy ({s['speedup']}x)"
        )
    assert surrogate["warm_speedup"] >= MIN_SURROGATE_WARM_SPEEDUP, (
        f"warm surrogate sweep only {surrogate['warm_speedup']}x faster "
        f"than quick-exact (floor {MIN_SURROGATE_WARM_SPEEDUP}x)"
    )
