"""Figure 6: ROB-capacity sensitivity of each workload class.

Paper shape: LS services reach 90-95% of peak with half the ROB and lose at
most ~23% at 48 entries; batch loses 19% avg / 31% max at 96 entries and
recovers to ~4% at 160; zeusmp is the high-sensitivity exemplar.
"""

from repro.experiments import fig06_rob_sensitivity as fig06
from repro.experiments.common import LS_WORKLOADS


def test_fig06_rob_sensitivity(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig06.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig06_rob_sensitivity", result.format())

    batch96 = result.slowdown("batch (avg)", 96)
    batch160 = result.slowdown("batch (avg)", 160)
    zeusmp96 = result.slowdown("zeusmp", 96)

    # Batch workloads are far more ROB-sensitive than LS services.
    for name in LS_WORKLOADS:
        assert result.slowdown(name, 96) < batch96
        # LS: 90-95% of peak performance with half the ROB (paper).
        assert result.slowdown(name, 96) <= 0.12
        # LS at 48 entries: bounded loss (paper: within 23%).
        assert result.slowdown(name, 48) <= 0.30
    # Batch average at half ROB is substantial (paper: 19%).
    assert batch96 >= 0.08
    # ... and mostly recovers by 160 entries (paper: 4%).
    assert batch160 <= batch96 / 2
    # zeusmp is at or near the worst case (paper: 31%).
    assert zeusmp96 >= batch96
    assert zeusmp96 >= 0.15
    # Sensitivity curves decrease with ROB size overall.
    curve = [result.slowdown("batch (avg)", size) for size in fig06.ROB_SIZES]
    assert curve[0] > curve[-1]
    assert abs(curve[-1]) < 0.02  # normalized to the 192-entry point
