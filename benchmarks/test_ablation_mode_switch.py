"""Ablation: Stretch mode-switch overhead (paper §IV-C).

The paper argues mode changes are negligible because they happen at load
time scales — the drain + limit reload + 12-cycle dual flush is tiny
against the millions of cycles between swings.  This ablation switches
modes *pathologically often* (every few thousand instructions) and shows
the throughput cost stays small even then.
"""

from repro.core.partitioning import BASELINE, DEFAULT_B_MODE
from repro.core.stretch import StretchCore, StretchMode
from repro.cpu.config import CoreConfig
from repro.cpu.smt_core import SMTCore
from repro.workloads.generator import generate_trace
from repro.workloads.registry import get_profile

PHASES = 12
INSTRUCTIONS_PER_PHASE = 2000


def run_ablation(sampling):
    def make_core():
        ws = generate_trace(get_profile("web_search"),
                            PHASES * INSTRUCTIONS_PER_PHASE * 8, seed=3)
        zm = generate_trace(get_profile("zeusmp"),
                            PHASES * INSTRUCTIONS_PER_PHASE * 8, seed=3)
        return SMTCore(CoreConfig(), (ws, zm))

    # Static B-mode run (one switch at the start).
    static = StretchCore(make_core())
    static.set_mode(StretchMode.B_MODE)
    static_committed = static_cycles = 0
    for __ in range(PHASES):
        result = static.core.run(INSTRUCTIONS_PER_PHASE, require_all_threads=True)
        static_committed += sum(t.instructions for t in result.threads)
        static_cycles += result.cycles

    # Pathological switching: flip the mode between every phase.
    flappy = StretchCore(make_core())
    flappy.set_mode(StretchMode.B_MODE)
    flappy_committed = flappy_cycles = 0
    for phase in range(PHASES):
        result = flappy.core.run(INSTRUCTIONS_PER_PHASE, require_all_threads=True)
        flappy_committed += sum(t.instructions for t in result.threads)
        flappy_cycles += result.cycles
        flappy.set_mode(
            StretchMode.BASELINE if phase % 2 == 0 else StretchMode.B_MODE
        )

    static_tput = static_committed / static_cycles
    flappy_tput = flappy_committed / flappy_cycles
    return static_tput, flappy_tput, flappy.mode_switches


def test_ablation_mode_switch_overhead(benchmark, fidelity, save_result):
    static_tput, flappy_tput, switches = benchmark.pedantic(
        run_ablation, args=(fidelity.sampling,), rounds=1, iterations=1
    )
    overhead = 1.0 - flappy_tput / static_tput
    text = "\n".join([
        "Ablation: Stretch mode-switch overhead",
        f"static B-mode throughput:        {static_tput:.3f} UIPC (combined)",
        f"switching every {INSTRUCTIONS_PER_PHASE} instructions: "
        f"{flappy_tput:.3f} UIPC ({switches} switches)",
        f"throughput cost of pathological switching: {overhead:+.1%}",
        "(real mode swings happen at diurnal time scales — hours apart)",
    ])
    save_result("ablation_mode_switch", text)

    # Even switching ~1000x more often than a real deployment would, the
    # drain+flush overhead stays small — the paper's negligibility claim.
    assert abs(overhead) < 0.25
    assert switches >= PHASES - 1
