"""Figure 7: MLP of Web Search vs zeusmp.

Paper shape: Web Search has >=2 concurrent misses only 9% of the time
(>=3: 3%), zeusmp 55% (>=3: 21%) — the reason big ROBs pay off for batch.
"""

from repro.experiments import fig07_mlp as fig07


def test_fig07_mlp(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig07.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig07_mlp", result.format())

    ws2 = result.mlp_at_least("web_search", 2)
    zm2 = result.mlp_at_least("zeusmp", 2)
    # zeusmp exhibits MLP for a large fraction of time, Web Search rarely.
    assert zm2 >= 3 * ws2
    assert ws2 <= 0.25          # paper: 9%
    assert 0.3 <= zm2 <= 0.95   # paper: 55%
    # Deeper MLP: zeusmp still substantial, Web Search nearly none.
    assert result.mlp_at_least("zeusmp", 3) >= 0.1   # paper: 21%
    assert result.mlp_at_least("web_search", 3) <= 0.1  # paper: 3%
    # Cumulative fractions are monotone in K.
    for name in fig07.WORKLOADS:
        values = [result.mlp_at_least(name, k) for k in fig07.MLP_LEVELS]
        assert values == sorted(values, reverse=True)
