"""Fleet-engine scaling benchmark: 1k → 1M servers over a 24-hour day.

Times :class:`repro.fleet.FleetEngine` (vectorized, surrogate tails) at
growing fleet sizes on the web_search/zeusmp pair and persists the wall
times to ``benchmarks/results/BENCH_fleet.json`` so the fleet engine's
perf trajectory is tracked across PRs.

Windows advance in chunks of :data:`repro.fleet.DEFAULT_CHUNK_SERVERS`
(the streaming path behind ``repro.service``).  ``server_windows_per_s``
*falls off* past 10k servers: the tail-evaluation phase's per-chunk
temporaries leave cache at the default 64k chunk (DESIGN.md §9).  The
``chunk_probe`` payload section measures that phase with the
``repro.obs`` profiler at the default and cache-sized chunks so the
trajectory check tracks both the stability default and the tuned
ceiling.

The tail-surrogate calibration (a one-off DES sweep, memoized in the
result store) runs *outside* the timed region — the acceptance target is
the simulation itself: a 1M-server day in under 60 seconds.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

from repro.api import measure
from repro.fleet import DEFAULT_CHUNK_SERVERS, FleetConfig, FleetEngine
from repro.obs.profiler import active_profiler, disable_profiling, enable_profiling
from repro.scenarios import get_scenario
from repro.workloads.registry import get_profile

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Override with ``REPRO_BENCH_FLEET_SIZES=1000,10000,100000`` to drop
#: the 1M point on constrained runners (the trajectory guard compares
#: only sizes present in both payloads).
FLEET_SIZES = tuple(
    int(size)
    for size in os.environ.get(
        "REPRO_BENCH_FLEET_SIZES", "1000,10000,100000,1000000"
    ).split(",")
)
SEED = 29

#: Acceptance bound from the issue: a 1M-server day in under a minute.
MAX_LARGEST_SECONDS = 60.0

#: Heterogeneous co-runner population for the placement-overhead probe.
POPULATION = ("zeusmp", "lbm", "milc", "namd")

#: Preferred fleet size for the overhead probe (falls back to the largest
#: configured size below it when the 100k point is dropped via env).
OVERHEAD_SERVERS = 100_000

#: Acceptance bound: heterogeneous stepping (placement assign + table
#: gather) costs at most 10% over the homogeneous path at 100k servers.
MAX_PLACEMENT_OVERHEAD = 0.10

#: Acceptance bound: an attached adversarial scenario (per-server load
#: and tail multipliers, repro.scenarios) costs at most 10% over the
#: unperturbed stepping path at 100k servers.
MAX_SCENARIO_OVERHEAD = 0.10

#: Scenario for the overhead probe: every component family active
#: (stragglers + generations tails, migration + incident + flash-crowd
#: loads), so the probe times the full multiplier path.
SCENARIO_NAME = "black_friday"

#: Chunk sizes for the tail-phase probe: the digest-stable default vs
#: the cache-sized chunk that keeps the tail evaluator's temporaries
#: resident (DESIGN.md §9; opt in via ``REPRO_FLEET_CHUNK``).
DEFAULT_CHUNK = DEFAULT_CHUNK_SERVERS
TUNED_CHUNK = 16384


def test_fleet_scaling(benchmark, fidelity, save_result):
    ls = get_profile("web_search")
    performance = measure("web_search", "zeusmp", sampling=fidelity.sampling)
    base = FleetConfig(seed=SEED)
    # Calibrate once, untimed: every size reuses the same fitted surrogate.
    surrogate = FleetEngine(ls, performance, base).ensure_surrogate()

    # Placement-path overhead first, on a fresh heap: the 1M run below
    # frees gigabyte-scale arrays, after which the heterogeneous path's
    # extra per-chunk temporaries refault through glibc's trimmed heap
    # and the probe reads allocator churn instead of stepping cost.
    overhead_n = max(
        (n for n in FLEET_SIZES if n <= OVERHEAD_SERVERS), default=FLEET_SIZES[0]
    )
    corunners = tuple(
        measure("web_search", name, sampling=fidelity.sampling)
        for name in POPULATION
    )
    het_config = replace(
        base, n_servers=overhead_n, population=POPULATION
    )
    het_engine = FleetEngine(
        ls, performance, het_config, corunners=corunners
    )
    het_surrogate = het_engine.ensure_surrogate()  # untimed, like above
    het_engine = FleetEngine(
        ls, performance, het_config, corunners=corunners,
        surrogate=het_surrogate,
    )
    homo_engine = FleetEngine(
        ls, performance, replace(base, n_servers=overhead_n),
        surrogate=surrogate,
    )
    # Median of *paired* CPU-time ratios: absolute times on this box
    # drift ~20% with CPU frequency and scheduler state, but adjacent
    # runs see the same clock, so the per-pair het/homo ratio is tight
    # (±3%).  Alternating the order inside each pair cancels linear
    # drift; process time (not wall) excludes involuntary preemption.
    def _timed(engine_):
        start = time.process_time()
        timeline = engine_.run_day("web_search")
        return time.process_time() - start, timeline

    het_timeline = het_engine.run_day("web_search")  # warm both paths
    homo_timeline = homo_engine.run_day("web_search")
    ratios = []
    for i in range(3):
        if i % 2 == 0:
            homo_s, _ = _timed(homo_engine)
            het_s, het_timeline = _timed(het_engine)
        else:
            het_s, het_timeline = _timed(het_engine)
            homo_s, _ = _timed(homo_engine)
        ratios.append(het_s / homo_s)
    assert het_timeline.total_windows == homo_timeline.total_windows
    placement_overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    assert placement_overhead <= MAX_PLACEMENT_OVERHEAD, (
        f"heterogeneous stepping at {overhead_n} servers costs "
        f"{placement_overhead:+.1%} over homogeneous "
        f"(budget {MAX_PLACEMENT_OVERHEAD:.0%})"
    )

    # Scenario-attached stepping overhead, same paired-ratio protocol on
    # the same homogeneous engine: the sampler compiles once per day and
    # the per-window cost is two vectorized multiplies.
    scenario = get_scenario(SCENARIO_NAME)

    def _timed_scenario(engine_, spec):
        start = time.process_time()
        timeline = engine_.run_day("web_search", scenario=spec)
        return time.process_time() - start, timeline

    scen_timeline = homo_engine.run_day("web_search", scenario=scenario)
    homo_engine.run_day("web_search")  # warm the plain path again
    ratios = []
    for i in range(3):
        if i % 2 == 0:
            plain_s, _ = _timed_scenario(homo_engine, None)
            scen_s, scen_timeline = _timed_scenario(homo_engine, scenario)
        else:
            scen_s, scen_timeline = _timed_scenario(homo_engine, scenario)
            plain_s, _ = _timed_scenario(homo_engine, None)
        ratios.append(scen_s / plain_s)
    assert scen_timeline.total_windows == homo_timeline.total_windows
    scenario_overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    assert scenario_overhead <= MAX_SCENARIO_OVERHEAD, (
        f"scenario-attached stepping ({SCENARIO_NAME}) at {overhead_n} "
        f"servers costs {scenario_overhead:+.1%} over unperturbed "
        f"(budget {MAX_SCENARIO_OVERHEAD:.0%})"
    )

    # Tail-phase chunk probe (DESIGN.md §9): profiled, paired days at the
    # default chunk vs a cache-sized one.  Runs before the 1M day so the
    # probe times stepping, not allocator churn through a trimmed heap.
    was_profiling = active_profiler() is not None
    profiler = enable_profiling()
    tails_s = {DEFAULT_CHUNK: 0.0, TUNED_CHUNK: 0.0}
    probe_cpu = {DEFAULT_CHUNK: 0.0, TUNED_CHUNK: 0.0}
    for rep in range(2):
        chunks = (DEFAULT_CHUNK, TUNED_CHUNK)
        for chunk in chunks if rep % 2 == 0 else chunks[::-1]:
            stepper = homo_engine.stepper("web_search", chunk_size=chunk)
            profiler.reset()
            start = time.process_time()
            for _ in range(homo_engine.config.n_windows):
                stepper.step()
            probe_cpu[chunk] += time.process_time() - start
            tails_s[chunk] += profiler.seconds("fleet.step.tails")
    if not was_profiling:
        disable_profiling()
    probe_windows = 2 * overhead_n * homo_engine.config.n_windows
    chunk_probe = {
        str(chunk): {
            "tails_ns_per_server_window": round(
                tails_s[chunk] / probe_windows * 1e9, 1
            ),
            "server_windows_per_s": int(probe_windows / probe_cpu[chunk]),
        }
        for chunk in (DEFAULT_CHUNK, TUNED_CHUNK)
    }

    wall: dict[int, float] = {}
    timelines = {}
    for n_servers in FLEET_SIZES:
        engine = FleetEngine(
            ls, performance, replace(base, n_servers=n_servers),
            surrogate=surrogate,
        )
        if n_servers == FLEET_SIZES[-1]:
            start = time.perf_counter()
            timelines[n_servers] = benchmark.pedantic(
                lambda: engine.run_day("web_search"), rounds=1, iterations=1
            )
            wall[n_servers] = time.perf_counter() - start
        else:
            start = time.perf_counter()
            timelines[n_servers] = engine.run_day("web_search")
            wall[n_servers] = time.perf_counter() - start

    largest = FLEET_SIZES[-1]
    assert wall[largest] < MAX_LARGEST_SECONDS, (
        f"{largest} servers took {wall[largest]:.1f}s "
        f"(budget {MAX_LARGEST_SECONDS:.0f}s)"
    )

    for n_servers, timeline in timelines.items():
        n_windows = timeline.mode_counts.shape[0]
        assert timeline.total_windows == n_servers * n_windows
        assert 0.0 <= timeline.violation_rate <= 1.0
        assert 0.0 < timeline.bmode_fraction < 1.0

    payload = {
        "fidelity": fidelity.name,
        "seed": SEED,
        "cpus": os.cpu_count(),
        "windows_per_day": int(timelines[largest].mode_counts.shape[0]),
        "surrogate_error_bound_ms": round(surrogate.error_bound_ms, 3),
        "wall_s": {str(n): round(wall[n], 3) for n in FLEET_SIZES},
        "server_windows_per_s": {
            str(n): int(timelines[n].total_windows / wall[n])
            for n in FLEET_SIZES
        },
        "budget_1m_s": MAX_LARGEST_SECONDS,
        "violation_rate_1m": round(timelines[largest].violation_rate, 5),
        "bmode_fraction_1m": round(timelines[largest].bmode_fraction, 5),
        "placement_overhead_servers": overhead_n,
        "placement_overhead": round(placement_overhead, 4),
        "placement_overhead_budget": MAX_PLACEMENT_OVERHEAD,
        "scenario_overhead_servers": overhead_n,
        "scenario_overhead": round(scenario_overhead, 4),
        "scenario_overhead_budget": MAX_SCENARIO_OVERHEAD,
        "chunk_probe_servers": overhead_n,
        "chunk_probe": chunk_probe,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fleet.json").write_text(json.dumps(payload, indent=2))
    save_result(
        "fleet_scaling",
        "\n".join(f"{key}: {value}" for key, value in payload.items()),
    )
