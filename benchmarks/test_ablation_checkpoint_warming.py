"""Ablation: statistical checkpoint warming (sampling methodology).

The paper warms caches and predictors functionally between samples; our
substitute installs steady-state-resident lines and branch state directly
(DESIGN.md S13).  This ablation shows what the short detailed-warmup-only
alternative would measure: lower absolute UIPC (cold LLC turns far misses
into memory misses) while the ROB-sensitivity *shape* survives — evidence
that the headline results are not an artifact of the warming shortcut.
"""

from dataclasses import replace

from repro.cpu.sampling import mean_uipc, sample_solo
from repro.experiments.common import config_solo
from repro.workloads.registry import get_profile


def run_ablation(sampling):
    warm = sampling
    cold = replace(sampling, checkpoint_warming=False)
    zm = get_profile("zeusmp")
    out = {}
    for label, cfg in (("warm", warm), ("cold", cold)):
        u192 = mean_uipc(sample_solo(zm, config_solo(192), cfg))
        u96 = mean_uipc(sample_solo(zm, config_solo(96), cfg))
        out[label] = (u192, u96, 1.0 - u96 / u192)
    return out


def test_ablation_checkpoint_warming(benchmark, fidelity, save_result):
    out = benchmark.pedantic(
        run_ablation, args=(fidelity.sampling,), rounds=1, iterations=1
    )
    lines = ["Ablation: checkpoint warming on/off (zeusmp ROB sensitivity)"]
    for label, (u192, u96, loss) in out.items():
        lines.append(
            f"{label}: UIPC@192={u192:.3f}  UIPC@96={u96:.3f}  loss@96={loss:+.1%}"
        )
    save_result("ablation_checkpoint_warming", "\n".join(lines))

    # Warming raises absolute performance (LLC no longer ice-cold) ...
    assert out["warm"][0] > out["cold"][0]
    # ... while the ROB-halving sensitivity survives either way.
    assert out["warm"][2] > 0.08
    assert out["cold"][2] > 0.08
