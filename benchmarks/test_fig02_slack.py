"""Figure 2: performance slack of the four services vs load."""

from repro.experiments import fig02_slack as fig02
from repro.experiments.common import LS_WORKLOADS


def test_fig02_slack(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig02.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig02_slack", result.format())

    for name in LS_WORKLOADS:
        # Required performance grows monotonically (within tolerance) with load.
        curve = [req for __, req in result.curves[name]]
        for lo, hi in zip(curve, curve[1:]):
            assert hi >= lo - 0.05
        # Significant slack at low-to-moderate load (paper: 55-90% at 20%).
        assert result.slack_at(name, 0.2) >= 0.4
        # Slack nearly gone close to peak (paper: >=80% perf needed at 80%).
        assert result.required_at(name, 0.8) >= 0.7
    # The across-service range at 20% load overlaps the paper's 55-90% band.
    slacks20 = [result.slack_at(name, 0.2) for name in LS_WORKLOADS]
    assert min(slacks20) >= 0.4 and max(slacks20) <= 0.95
