#!/usr/bin/env python
"""Bench-trajectory guard: fail CI on throughput regressions.

Compares freshly generated benchmark payloads against the committed
baselines under ``benchmarks/results/``:

* ``BENCH_fleet.json`` — per-size ``server_windows_per_s`` from the
  fleet scaling benchmark.  A size present in both payloads may not
  regress by more than ``--max-regression`` (default 25%).  The
  10k-vs-100k falloff ratio (how much throughput the working-set jump
  costs — ROADMAP's memory-bandwidth trail) is recorded for both
  payloads and printed; it is informational, since the per-size gates
  already bound each end of the ratio.
* ``BENCH_core.json`` — per-scenario ``fast_cps`` from the core engine
  benchmark, same rule; plus the surrogate-tier sweep entry, gated on an
  absolute floor (``min_warm_speedup``, committed inside the payload):
  the warm fit-cached evaluation must stay at least that many times
  faster than the quick-exact DES sweep.

Usage (the CI flow: stash the committed results, rerun the benchmark —
which rewrites the payloads in place — then compare)::

    cp benchmarks/results/BENCH_fleet.json /tmp/baseline_fleet.json
    REPRO_BENCH_FLEET_SIZES=1000,10000,100000 \
        pytest benchmarks/test_fleet_scaling.py -x -q -s -o addopts=
    python benchmarks/check_bench_trajectory.py \
        --baseline-fleet /tmp/baseline_fleet.json

Absolute wall times are machine-dependent; the guard therefore compares
each fresh number against the committed baseline *ratio-wise* and is
meant to run on runners comparable to the ones that produced the
baseline.  Exits 1 on any regression beyond the margin, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def load(path: Path) -> dict | None:
    if not path.is_file():
        return None
    with open(path) as fh:
        return json.load(fh)


def check_ratio(label: str, baseline: float, fresh: float,
                max_regression: float, failures: list[str]) -> None:
    """Flag ``label`` when ``fresh`` fell more than the margin below."""
    if baseline <= 0:
        return
    change = fresh / baseline - 1.0
    marker = ""
    if change < -max_regression:
        failures.append(
            f"{label}: {baseline:,.0f} -> {fresh:,.0f} "
            f"({change:+.1%}, allowed -{max_regression:.0%})"
        )
        marker = "  << REGRESSION"
    print(f"  {label:32s} {baseline:>12,.0f} -> {fresh:>12,.0f} "
          f"({change:+7.1%}){marker}")


def check_fleet(baseline: dict, fresh: dict, max_regression: float,
                failures: list[str]) -> None:
    base_sws = baseline.get("server_windows_per_s", {})
    fresh_sws = fresh.get("server_windows_per_s", {})
    shared = sorted(set(base_sws) & set(fresh_sws), key=int)
    if not shared:
        failures.append("fleet: no fleet sizes shared with the baseline")
        return
    print(f"fleet server_windows_per_s ({len(shared)} shared sizes):")
    for size in shared:
        check_ratio(f"fleet[{size}]", float(base_sws[size]),
                    float(fresh_sws[size]), max_regression, failures)

    # The 10k -> 100k falloff: the jump past cache residency.  >1 means
    # throughput fell with the larger working set.
    for name, payload in (("baseline", base_sws), ("fresh", fresh_sws)):
        if "10000" in payload and "100000" in payload:
            falloff = float(payload["10000"]) / float(payload["100000"])
            print(f"  10k-vs-100k falloff ({name}): {falloff:.2f}x")

    # Heterogeneous-placement stepping overhead vs the homogeneous path.
    # The benchmark itself asserts the budget; the trajectory guard only
    # fails when a fresh payload breaches it (older baselines may predate
    # the field entirely).
    for kind in ("placement", "scenario"):
        budget = fresh.get(f"{kind}_overhead_budget")
        for name, payload in (("baseline", baseline), ("fresh", fresh)):
            overhead = payload.get(f"{kind}_overhead")
            if overhead is None:
                continue
            servers = payload.get(f"{kind}_overhead_servers", "?")
            print(f"  {kind} overhead ({name}, {servers} servers): "
                  f"{float(overhead):+.1%}")
            if name == "fresh" and budget is not None \
                    and float(overhead) > float(budget):
                failures.append(
                    f"fleet: {kind} overhead {float(overhead):+.1%} exceeds "
                    f"budget {float(budget):.0%}"
                )


def check_core(baseline: dict, fresh: dict, max_regression: float,
               failures: list[str]) -> None:
    base_scenarios = baseline.get("scenarios", {})
    fresh_scenarios = fresh.get("scenarios", {})
    shared = sorted(set(base_scenarios) & set(fresh_scenarios))
    if not shared:
        failures.append("core: no scenarios shared with the baseline")
        return
    print(f"core fast_cps ({len(shared)} shared scenarios):")
    for name in shared:
        check_ratio(f"core[{name}]",
                    float(base_scenarios[name]["fast_cps"]),
                    float(fresh_scenarios[name]["fast_cps"]),
                    max_regression, failures)

    # Surrogate-tier sweep: the warm (fit-cached) evaluation must keep its
    # wall-clock advantage over the quick-exact DES sweep.  The floor is
    # absolute (not baseline-relative) and travels inside the payload, so
    # older baselines without the section are simply skipped.
    for name, payload in (("baseline", baseline), ("fresh", fresh)):
        entry = payload.get("surrogate")
        if entry is None:
            continue
        speedup = float(entry["warm_speedup"])
        floor = float(entry.get("min_warm_speedup", 0.0))
        print(f"  surrogate warm speedup ({name}): {speedup:.1f}x "
              f"(exact {entry['exact_s']}s, warm {entry['warm_s']}s, "
              f"floor {floor:.0f}x)")
        if name == "fresh" and speedup < floor:
            failures.append(
                f"core: surrogate warm speedup {speedup:.1f}x below the "
                f"{floor:.0f}x floor"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--baseline-fleet", type=Path, default=None,
        help="committed BENCH_fleet.json to compare against",
    )
    parser.add_argument(
        "--baseline-core", type=Path, default=None,
        help="committed BENCH_core.json to compare against",
    )
    parser.add_argument(
        "--fresh-fleet", type=Path,
        default=RESULTS_DIR / "BENCH_fleet.json",
        help="freshly generated BENCH_fleet.json",
    )
    parser.add_argument(
        "--fresh-core", type=Path,
        default=RESULTS_DIR / "BENCH_core.json",
        help="freshly generated BENCH_core.json",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="allowed fractional throughput drop (default 0.25)",
    )
    args = parser.parse_args(argv)

    failures: list[str] = []
    compared = 0
    for label, baseline_path, fresh_path, checker in (
        ("fleet", args.baseline_fleet, args.fresh_fleet, check_fleet),
        ("core", args.baseline_core, args.fresh_core, check_core),
    ):
        if baseline_path is None:
            continue
        baseline = load(baseline_path)
        fresh = load(fresh_path)
        if baseline is None:
            failures.append(f"{label}: baseline {baseline_path} missing")
            continue
        if fresh is None:
            failures.append(f"{label}: fresh payload {fresh_path} missing "
                            "(did the benchmark run?)")
            continue
        checker(baseline, fresh, args.max_regression, failures)
        compared += 1

    if compared == 0 and not failures:
        print("nothing to compare: pass --baseline-fleet and/or "
              "--baseline-core", file=sys.stderr)
        return 2
    if failures:
        print("\nbench trajectory FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nbench trajectory OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
