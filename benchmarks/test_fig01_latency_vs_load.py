"""Figure 1: Web Search latency vs load (avg / p95 / p99)."""

from repro.experiments import fig01_latency_vs_load as fig01


def test_fig01_latency_vs_load(benchmark, fidelity, save_result):
    result = benchmark.pedantic(
        fig01.run, args=(fidelity,), rounds=1, iterations=1
    )
    save_result("fig01_latency_vs_load", result.format())

    # QoS is met at every load point up to the (bisected) peak.
    for __, stats in result.points:
        assert stats.p99 <= result.qos_target_ms * 1.02
    # p99 grows much faster than the average as queueing sets in
    # (paper: average +43%, p99 over 2.5x).
    assert result.p99_growth >= 1.8
    assert result.average_growth > 0.2
    # Latency is monotone-ish in load at the tail.
    p99s = [stats.p99 for __, stats in result.points]
    assert p99s[-1] > p99s[0]
    # The 99th percentile sits well above the median at every load.
    for __, stats in result.points:
        assert stats.p99 > stats.p50
