"""Tables I-III: regenerate the paper's parameter tables."""

from repro.experiments import tables


def test_tables(benchmark, fidelity, save_result):
    result = benchmark.pedantic(tables.run, args=(fidelity,), rounds=1, iterations=1)
    text = result.format()
    save_result("tables", text)
    # Table I: the four services and their QoS contracts.
    assert "data_serving" in text and "20 ms" in text and "p99" in text
    assert "1 sec" in text and "p95" in text
    # Table II: the simulated core of the paper.
    assert "192 entries total, 96 per thread" in text
    assert "64 entries total, 32 per thread" in text
    assert "16K gShare & 4K bimodal" in text
    assert "75 ns (188 cycles)" in text
    # Table III: evaluation services.
    assert "Nutch / Lucene" in text
