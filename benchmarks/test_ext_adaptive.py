"""Extension: adaptive multi-B-mode control vs the two-point monitor."""

from repro.experiments import ext_adaptive as ext


def test_ext_adaptive(benchmark, fidelity, save_result):
    result = benchmark.pedantic(ext.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("ext_adaptive", result.format())

    # Both policies convert off-peak slack into positive daily batch gains.
    assert result.mean_gain("two-point") > 0.0
    assert result.mean_gain("adaptive") > 0.0
    # Finer-grain control harvests more of the slack (the paper's §IV-D
    # anticipation) without blowing up the violation rate.
    assert result.mean_gain("adaptive") > result.mean_gain("two-point")
    assert result.mean_violations("adaptive") <= 0.15
    assert result.mean_violations("two-point") <= 0.15
    # Adaptive engages at least as much B-mode time.
    adaptive_time = [d.bmode_fraction for d in result.days if d.policy == "adaptive"]
    fixed_time = [d.bmode_fraction for d in result.days if d.policy == "two-point"]
    assert sum(adaptive_time) >= sum(fixed_time) - 0.1
