"""Figure 5: average per-resource contention across all four services.

Paper shape: ROB sharing costs batch ~19% on average (31% max); no single
resource costs the latency-sensitive side much.
"""

from repro.experiments import fig05_resource_contention_all as fig05


def test_fig05_resource_contention_all(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig05.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig05_resource_contention", result.format())

    # ROB is the dominant average batch bottleneck across services.
    rob_avg = result.avg_batch_slowdown("rob")
    assert rob_avg >= 0.06  # paper: 19%
    for resource in ("l1i", "bp"):
        assert rob_avg > result.avg_batch_slowdown(resource)
    assert result.max_batch_slowdown("rob") >= 0.18  # paper: 31%
    # LS-side average loss per single resource stays modest for every service.
    for resource in ("rob", "l1i", "bp"):
        assert result.avg_ls_slowdown(resource) <= 0.15
