"""Engine scaling benchmark: serial vs parallel wall time on a fixed grid.

Runs the same simulation job grid three ways — serially in-process, through
the process-pool engine with a cold result store, and again with a warm
store — asserting result equivalence, and persists the wall times to
``benchmarks/results/BENCH_engine.json`` so the perf trajectory of the
execution engine is tracked across PRs.

On a multi-core machine the parallel cold run should approach
``min(workers, cores)``-fold speedup; on a single-core CI box it merely
must not lose results.  The warm run must be dominated by cache hits.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.engine import EngineConfig, ExecutionEngine, ResultStore, SimJob
from repro.experiments.common import config_all_shared, config_solo

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Fixed grid: 2 LS × 3 batch colocations + 6 solo references.
GRID_LS = ("web_search", "data_serving")
GRID_BATCH = ("gamess", "zeusmp", "lbm")


def _grid(fidelity) -> list[SimJob]:
    sampling = fidelity.sampling
    shared, solo = config_all_shared(), config_solo()
    jobs = [
        SimJob.solo(w, solo, sampling) for w in (*GRID_LS, *GRID_BATCH)
    ]
    jobs += [
        SimJob.pair(ls, batch, shared, sampling)
        for ls in GRID_LS
        for batch in GRID_BATCH
    ]
    return jobs


def test_engine_scaling(benchmark, fidelity, tmp_path, save_result):
    jobs = _grid(fidelity)
    workers = min(4, os.cpu_count() or 1)

    serial_store = ResultStore(tmp_path / "serial")
    start = time.perf_counter()
    serial = ExecutionEngine(EngineConfig(workers=1)).run_jobs(
        jobs, store=serial_store
    )
    serial_s = time.perf_counter() - start

    parallel_store = ResultStore(tmp_path / "parallel")
    engine = ExecutionEngine(EngineConfig(workers=workers))

    def parallel_cold():
        return engine.run_jobs(jobs, store=parallel_store)

    start = time.perf_counter()
    parallel = benchmark.pedantic(parallel_cold, rounds=1, iterations=1)
    parallel_s = time.perf_counter() - start

    start = time.perf_counter()
    warm = engine.run_jobs(jobs, store=parallel_store)
    warm_s = time.perf_counter() - start

    # Parallel execution is result-transparent, and the warm run is served
    # entirely from the content-addressed store.
    assert parallel.results == serial.results
    assert warm.results == serial.results
    assert serial.stats.executed == len(jobs)
    assert parallel.stats.executed == len(jobs)
    assert warm.stats.cache_hits == len(jobs) and warm.stats.executed == 0

    payload = {
        "fidelity": fidelity.name,
        "grid_jobs": len(jobs),
        "workers": workers,
        "cpus": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_cold_s": round(parallel_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup_cold": round(serial_s / parallel_s, 3) if parallel_s else None,
        "speedup_warm": round(serial_s / warm_s, 1) if warm_s else None,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_engine.json").write_text(json.dumps(payload, indent=2))
    save_result(
        "engine_scaling",
        "\n".join(f"{key}: {value}" for key, value in payload.items()),
    )
