"""Figure 12: fetch throttling (front-end) vs Stretch (back-end).

Paper shape: increasing the fetch-throttling ratio buys small batch gains
(-3% at 1:2 ... +6% at 1:16 vs equal partitioning) at rapidly exploding LS
cost (10% ... 68%), because fetch control cannot stop a miss-clogged thread
from holding ROB entries.  Stretch dominates: +13% batch at 7% LS cost.
"""

from repro.experiments import fig12_fetch_throttling as fig12


def test_fig12_fetch_throttling(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig12.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig12_fetch_throttling", result.format())

    ls_cost = {p: result.avg_ls_slowdown(p) for p in result.by_policy}
    batch_gain = {p: result.avg_batch_speedup(p) for p in result.by_policy}

    # LS cost grows with the throttling ratio (paper: 10% -> 68%).
    assert ls_cost["FT 1:16"] > ls_cost["FT 1:4"] > ls_cost["FT 1:2"] - 0.03
    # Aggressive throttling is brutal for the LS thread.
    assert ls_cost["FT 1:16"] >= 0.25
    # Stretch achieves a solid batch gain at a fraction of any FT ratio's
    # LS cost (model deviation: our FT buys more absolute batch gain than
    # the paper's because the LS clog is less persistent under starvation;
    # the *trade-off* dominance — the paper's actual conclusion — holds).
    assert ls_cost["Stretch"] < ls_cost["FT 1:2"]
    assert ls_cost["Stretch"] <= 0.20  # paper: 7%
    assert batch_gain["Stretch"] > 0.03
    # Back-end control dominates front-end control in gain per unit of
    # latency-sensitive performance sacrificed, at every ratio.
    stretch_efficiency = batch_gain["Stretch"] / max(ls_cost["Stretch"], 1e-6)
    for m in fig12.THROTTLE_RATIOS:
        ft_efficiency = batch_gain[f"FT 1:{m}"] / max(ls_cost[f"FT 1:{m}"], 1e-6)
        assert stretch_efficiency > ft_efficiency
