"""Figure 3: slowdown of LS and batch threads under SMT colocation.

Paper shape: latency-sensitive workloads lose modestly (14% avg / 28% max),
batch workloads lose more (24% avg / 46% max).
"""

from repro.experiments import fig03_colocation_slowdown as fig03
from repro.util.stats import summarize


def test_fig03_colocation(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig03.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig03_colocation", result.format())

    ls = summarize(result.all_ls_slowdowns())
    batch = summarize(result.all_batch_slowdowns())
    # Both classes lose performance on average.
    assert 0.05 <= ls.mean <= 0.30
    assert 0.08 <= batch.mean <= 0.35
    # The batch tail is substantial (paper max 46%).
    assert batch.maximum >= 0.25
    # The batch median exceeds the LS median (the paper's victimization
    # finding, robust to our LS outliers at the violin tails).
    assert batch.median >= ls.median - 0.02
    # Every colocation keeps both threads running (no starvation).
    for rows in result.pairs.values():
        for __, ls_slow, batch_slow in rows:
            assert ls_slow < 0.8 and batch_slow < 0.8
