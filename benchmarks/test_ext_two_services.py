"""Extension (§IV-D): colocating two latency-sensitive services.

A skewed configuration toward the loaded thread should extend the load
range that thread can serve within QoS, paid for by the low-load service's
slack.
"""

from repro.experiments import ext_two_services as ext


def test_ext_two_services(benchmark, fidelity, save_result):
    result = benchmark.pedantic(ext.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("ext_two_services", result.format())

    for row in result.rows:
        # The skew helps the loaded service's single-thread performance...
        assert row.skew_factor_loaded >= row.equal_factor_loaded - 0.02
        # ...and never shrinks its QoS-safe load range.
        assert row.skew_safe_load >= row.equal_safe_load - 0.05
        # The background service pays (it has the slack to).
        assert row.skew_factor_background <= row.equal_factor_background + 0.05
    # At least one pair shows a strict improvement in safe load or factor.
    assert any(
        row.skew_factor_loaded > row.equal_factor_loaded + 0.01
        or row.skew_safe_load > row.equal_safe_load
        for row in result.rows
    )
