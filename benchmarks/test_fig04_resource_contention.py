"""Figure 4: per-resource contention for Web Search vs 29 co-runners.

Paper shape: the shared ROB is the dominant batch bottleneck (>15% loss for
about half the co-runners, ~31% max), while Web Search loses little to any
single resource except the L1-D against lbm.
"""

from repro.experiments import fig04_resource_contention as fig04


def test_fig04_resource_contention(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig04.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig04_resource_contention", result.format())

    # The ROB is the consistent batch bottleneck...
    rob_batch = result.batch_summary("rob")
    assert rob_batch.mean >= 0.06
    assert result.batch_over("rob", 0.15) >= 8  # paper: 15 of 29
    assert rob_batch.maximum >= 0.18            # paper: 31%
    # ... and hurts batch more than any front-end structure does.
    for resource in ("l1i", "bp"):
        assert rob_batch.mean > result.batch_summary(resource).mean
    # Web Search's median loss to each single resource stays modest.
    for resource in fig04.RESOURCES:
        assert result.ls_summary(resource).median <= 0.15
    # The L1-D outlier (lbm) hits Web Search hardest among L1-D co-runners.
    l1d_rows = result.by_resource["l1d"]
    worst = max(l1d_rows, key=lambda row: row[1])
    assert worst[1] >= 0.08
