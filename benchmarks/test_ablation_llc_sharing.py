"""Ablation: the paper's LLC-partitioning idealization (§V-A "Uncore").

The paper partitions the LLC per application (Intel CAT-style) "to avoid
performance loss due to LLC contention", so none of its colocation numbers
include LLC capacity interference.  This ablation runs representative
colocations with a *fully shared* LLC instead, quantifying how much
additional slowdown the idealization removes — and verifying the Stretch
B-mode benefit survives LLC contention.
"""

from dataclasses import replace

from repro.core.partitioning import DEFAULT_B_MODE
from repro.cpu.config import CoreConfig, UncoreConfig
from repro.experiments.common import pair_uipc

PAIRS = (("web_search", "zeusmp"), ("web_search", "lbm"),
         ("data_serving", "milc"), ("media_streaming", "gamess"))


def _shared_llc(config: CoreConfig) -> CoreConfig:
    return replace(config, uncore=UncoreConfig(llc_partitioned=False))


def run_ablation(sampling):
    partitioned = CoreConfig()
    shared = _shared_llc(partitioned)
    b_part = DEFAULT_B_MODE.apply(partitioned)
    b_shared = _shared_llc(b_part)
    rows = []
    for ls, batch in PAIRS:
        ls_p, batch_p = pair_uipc(ls, batch, partitioned, sampling)
        ls_s, batch_s = pair_uipc(ls, batch, shared, sampling)
        __, batch_bp = pair_uipc(ls, batch, b_part, sampling)
        __, batch_bs = pair_uipc(ls, batch, b_shared, sampling)
        rows.append({
            "pair": f"{ls} + {batch}",
            "ls_extra_slowdown": 1.0 - ls_s / ls_p,
            "batch_extra_slowdown": 1.0 - batch_s / batch_p,
            "bmode_gain_partitioned": batch_bp / batch_p - 1.0,
            "bmode_gain_shared": batch_bs / batch_s - 1.0,
        })
    return rows


def test_ablation_llc_sharing(benchmark, fidelity, save_result):
    rows = benchmark.pedantic(
        run_ablation, args=(fidelity.sampling,), rounds=1, iterations=1
    )
    lines = ["Ablation: CAT-partitioned vs fully shared LLC",
             f"{'pair':<30} {'LS extra slow':>14} {'batch extra':>12} "
             f"{'B-gain (part)':>14} {'B-gain (shared)':>16}"]
    for row in rows:
        lines.append(
            f"{row['pair']:<30} {row['ls_extra_slowdown']:>+14.1%} "
            f"{row['batch_extra_slowdown']:>+12.1%} "
            f"{row['bmode_gain_partitioned']:>+14.1%} "
            f"{row['bmode_gain_shared']:>+16.1%}"
        )
    avg_gain_shared = sum(r["bmode_gain_shared"] for r in rows) / len(rows)
    lines.append(f"B-mode average gain with a SHARED LLC: {avg_gain_shared:+.1%} "
                 "(the mechanism survives LLC contention)")
    lines.append(
        "Note: near-zero extra slowdowns mean the paper's CAT idealization "
        "costs nothing measurable at sampled time scales here — the two "
        "threads' resident sets coexist in the shared 8 MB within a sample."
    )
    save_result("ablation_llc_sharing", "\n".join(lines))

    # The Stretch benefit must survive LLC contention on average.
    assert avg_gain_shared > 0.0
    # Shared-LLC runs remain functional (no pathological collapse).
    for row in rows:
        assert row["ls_extra_slowdown"] < 0.6
        assert row["batch_extra_slowdown"] < 0.6
