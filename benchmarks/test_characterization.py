"""Workload characterization sweep (paper §III measurement surface)."""

from repro.experiments import characterization


def test_characterization(benchmark, fidelity, save_result):
    result = benchmark.pedantic(
        characterization.run, args=(fidelity,), rounds=1, iterations=1
    )
    save_result("characterization", result.format())

    characters = result.characters
    assert len(characters) == 33  # 4 services + 29 SPEC benchmarks

    services = [c for c in characters.values() if c.kind == "latency-sensitive"]
    batch = [c for c in characters.values() if c.kind == "batch"]

    # Server signature: higher L1-I pressure, lower MLP than batch average.
    avg_service_l1i = sum(c.l1i_mpki for c in services) / len(services)
    avg_batch_l1i = sum(c.l1i_mpki for c in batch) / len(batch)
    assert avg_service_l1i > avg_batch_l1i

    avg_service_mlp = sum(c.mlp_ge2 for c in services) / len(services)
    avg_batch_mlp = sum(c.mlp_ge2 for c in batch) / len(batch)
    assert avg_batch_mlp > 1.5 * avg_service_mlp

    # Sanity: all UIPCs in a plausible band for a 6-wide core.
    for c in characters.values():
        assert 0.05 < c.uipc < 6.0
        assert 0.0 <= c.branch_misprediction_rate <= 0.5
