"""Extension: energy/perf-per-watt view of B-mode (run separately if the
main suite predates this file; append with ``--benchmark-only | tee -a``)."""

from repro.experiments import ext_energy as ext


def test_ext_energy(benchmark, fidelity, save_result):
    result = benchmark.pedantic(ext.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("ext_energy", result.format())

    # Every pair produced both modes.
    pairs = {r.pair for r in result.rows}
    assert len(result.rows) == 2 * len(pairs)
    for row in result.rows:
        assert row.combined_uipc > 0
        assert row.watts > 0
        assert row.instructions_per_joule > 0
    # B-mode never costs meaningful efficiency, and helps on average:
    # it shifts window capacity toward the thread that converts it into
    # retired work.
    for pair in pairs:
        assert result.ipj_gain(pair) > -0.05, pair
    assert result.mean_ipj_gain() > 0.0
