"""Benchmark-suite fixtures.

Each benchmark regenerates one paper table/figure via its experiment
harness, asserts the paper's qualitative shape (who wins, roughly by how
much, where crossovers fall), and persists the rendered rows under
``benchmarks/results/`` for inspection.

Fidelity comes from ``REPRO_FIDELITY`` (any registered tier — quick, full,
surrogate); simulation results are
memoized in the engine's content-addressed store (``.repro_cache/``), so
re-runs and cross-benchmark reuse are fast.  Benchmarks run their experiment
exactly once
(``benchmark.pedantic(..., rounds=1)``) — the interesting metric is the
experiment's wall time, not statistical timing over repeats.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import Fidelity

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def fidelity():
    return Fidelity.from_env()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
