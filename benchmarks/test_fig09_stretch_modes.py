"""Figure 9: speedups under every B-mode and Q-mode ROB skew.

Paper headlines: B-mode 56-136 gives batch +13% avg / +30% max at an LS cost
of -7% avg / -13% worst; deeper skews help batch more and cost LS more;
Q-mode 136-56 gives LS +7% avg at a batch cost of -21% avg.
"""

from repro.experiments import fig09_stretch_modes as fig09


def test_fig09_stretch_modes(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig09.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig09_stretch_modes", result.format())

    b_default = result.batch_summary("56-136")
    ls_default = result.ls_summary("56-136")
    # Headline B-mode: meaningful average batch gain, large best case.
    assert 0.05 <= b_default.mean <= 0.25          # paper: +13%
    assert b_default.maximum >= 0.15               # paper: +30%
    # LS pays only a modest average cost.
    assert -0.20 <= ls_default.mean <= 0.0         # paper: -7%
    # Deeper skew 32-160 buys more batch speedup than 64-128.
    assert result.batch_summary("32-160").mean > result.batch_summary("64-128").mean
    # ... and costs the LS thread more.
    assert result.ls_summary("32-160").mean < result.ls_summary("64-128").mean
    # Q-mode mirror: LS gains, batch pays.
    q_default = result.batch_summary("136-56")
    assert result.ls_summary("136-56").mean > 0.0  # paper: +7%
    assert q_default.mean < -0.08                  # paper: -21%
    # Q-mode LS gains are smaller than B-mode batch gains (low LS ROB
    # sensitivity — the paper's §VI-A2 observation).
    assert result.ls_summary("136-56").mean < b_default.mean
