"""Figure 14 / §VI-D: diurnal cluster case studies.

Paper shape: a Web Search cluster sits below 85% of peak for ~11 h/day,
turning the measured B-mode gain into ~5% average daily throughput; a
YouTube-style cluster (~17 h/day below 85%) yields ~11%.
"""

from repro.experiments import fig14_case_studies as fig14


def test_fig14_case_studies(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig14.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig14_case_studies", result.format())

    ws = result.row("web_search_cluster")
    yt = result.row("youtube_cluster")

    # Enablement windows match the cited diurnal shapes.
    assert 9.5 <= ws.hours_enabled <= 12.5   # paper: ~11 h
    assert 15.5 <= yt.hours_enabled <= 18.5  # paper: ~17 h
    # Measured B-mode gains are positive for both services.
    assert ws.bmode_gain > 0.03
    assert yt.bmode_gain > 0.03
    # Daily gain = gain x enabled fraction (coarse-grained policy).
    assert ws.daily_gain > 0.015  # paper: ~5%
    assert yt.daily_gain > 0.02   # paper: ~11%
    # The longer enablement window converts the same order of gain into a
    # larger daily improvement.
    assert yt.daily_gain / max(yt.bmode_gain, 1e-9) > ws.daily_gain / max(
        ws.bmode_gain, 1e-9
    )
