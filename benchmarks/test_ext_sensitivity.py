"""Extension: B-mode gain sensitivity to machine parameters (§IV-D)."""

from repro.experiments import ext_sensitivity as ext


def test_ext_sensitivity(benchmark, fidelity, save_result):
    result = benchmark.pedantic(ext.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("ext_sensitivity", result.format())

    # The robust claim: a positive average batch gain at every sweep point —
    # Stretch is a mechanism, not a point design.  (Magnitudes interact
    # non-monotonically with the parameters; see the module docstring.)
    for point in result.points:
        assert point.batch_gain > 0.0, (point.axis, point.variant)
        assert -0.05 <= point.ls_cost <= 0.45, (point.axis, point.variant)

    # Every axis was actually swept.
    assert {p.axis for p in result.points} == {
        "mshrs/thread", "memory ns", "ROB entries"
    }
    assert len(result.along("ROB entries")) == 3
