"""Figure 13: Stretch vs ideal software scheduling, and their combination.

Paper shape: ideal contention-free scheduling yields +8% batch speedup,
Stretch +13%, and the combination +21% — additive, because they target
different loss sources (cache/BP contention vs window capacity).
"""

from repro.experiments import fig13_software_scheduling as fig13


def test_fig13_software_scheduling(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig13.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig13_software_scheduling", result.format())

    ideal = result.average("Ideal Software Scheduling")
    stretch = result.average("Stretch")
    combined = result.average("Stretch + Ideal Software Scheduling")

    # All three help batch throughput on average.
    assert ideal > 0.0
    assert stretch > 0.0
    # Stretch beats even idealized contention-free scheduling (paper: 13 vs 8).
    assert stretch > ideal - 0.02
    # The combination beats either alone — the techniques are additive.
    assert combined > stretch
    assert combined > ideal
    # Additivity within slack: combined is in the ballpark of the sum.
    assert combined >= 0.5 * (ideal + stretch)
