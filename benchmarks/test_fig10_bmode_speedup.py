"""Figure 10: per-co-runner batch speedups under B-mode 56-136, sorted.

Paper shape: for each service, at least 10 co-runners gain over 15%, two
more gain over 10%, and the remaining ROB-insensitive ones gain 2-9%.
"""

from repro.experiments import fig10_bmode_speedup as fig10
from repro.experiments.common import LS_WORKLOADS


def test_fig10_bmode_speedup(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig10.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig10_bmode_speedup", result.format())

    for ls in LS_WORKLOADS:
        speedups = [s for __, s in result.speedups[ls]]
        # Sorted descending (the figure's presentation).
        assert speedups == sorted(speedups, reverse=True)
        # A solid group of big winners (paper: >=10 over 15%).
        assert result.count_over(ls, 0.10) >= 8
        # The tail is flat, not negative on average.
        tail = speedups[-5:]
        assert sum(tail) / len(tail) >= -0.05
    # The high-MLP exemplars are among the winners for web_search.
    ranked = [name for name, __ in result.speedups["web_search"]]
    top_half = set(ranked[: len(ranked) // 2])
    assert {"zeusmp", "libquantum", "milc"} & top_half
