"""Figure 11: dynamically shared ROB vs equal static partitioning.

Paper shape: batch applications lose 8% avg (49% max) under dynamic
sharing because the latency-sensitive thread clogs entries it cannot use;
the LS side gains slightly (4% avg / 11% max).

Model deviation (see EXPERIMENTS.md): our wrong-path occupancy model lets
the LS thread clog the shared ROB (doubling its occupancy vs a stall-only
front end), but LS front-end stalls (I-misses, redirect refills) still cap
its allocation share against a high-dispatch-rate co-runner, so in our
model BOTH sides lose under dynamic sharing — the LS side included.  The
conclusion the paper draws from this figure (unmanaged dynamic sharing is
strictly worse than explicit partitioning) holds at least as strongly.
"""

from repro.experiments import fig11_dynamic_sharing as fig11
from repro.util.stats import summarize


def test_fig11_dynamic_sharing(benchmark, fidelity, save_result):
    result = benchmark.pedantic(fig11.run, args=(fidelity,), rounds=1, iterations=1)
    save_result("fig11_dynamic_sharing", result.format())

    batch = summarize(result.all_batch_slowdowns())
    ls = summarize(result.all_ls_changes())
    # Batch has a heavy loss tail under dynamic sharing (paper: -49% worst).
    assert batch.maximum >= 0.12
    # Batch does not gain meaningfully on average.
    assert batch.mean >= -0.08
    # In our model the LS side also loses (deviation from the paper's small
    # LS gain — see module docstring); nobody wins from unmanaged sharing.
    assert ls.mean <= 0.05
    # The headline: dynamic sharing never dominates equal partitioning for
    # both classes simultaneously.
    assert not (ls.mean > 0.02 and batch.mean < -0.02)
