"""Ablation: proportional LSQ management (the paper's footnote 1).

The paper manages the LSQ "in proportion to the ROB".  This ablation runs
the 32-160 B-mode with and without the proportional LSQ split: with the LSQ
left at the equal 32-32 partition, the batch thread's extra ROB entries
cannot be filled with memory operations, capping the MLP the deep skew is
supposed to unlock.
"""

from dataclasses import replace

from repro.cpu.config import CoreConfig
from repro.experiments.common import pair_uipc

PAIRS = (("web_search", "zeusmp"), ("web_search", "libquantum"),
         ("data_serving", "milc"), ("media_streaming", "GemsFDTD"))


def run_ablation(sampling):
    proportional = CoreConfig().with_rob_partition(32, 160)
    fixed_lsq = replace(proportional, lsq_limits=(32, 32))
    rows = []
    for ls, batch in PAIRS:
        __, batch_prop = pair_uipc(ls, batch, proportional, sampling)
        __, batch_fixed = pair_uipc(ls, batch, fixed_lsq, sampling)
        rows.append((ls, batch, batch_prop, batch_fixed))
    return rows


def test_ablation_lsq_scaling(benchmark, fidelity, save_result):
    rows = benchmark.pedantic(
        run_ablation, args=(fidelity.sampling,), rounds=1, iterations=1
    )
    lines = ["Ablation: B-mode 32-160 with proportional vs equal (32-32) LSQ",
             f"{'pair':<34} {'batch UIPC (prop)':>18} {'batch UIPC (fixed)':>19}"]
    gains = []
    for ls, batch, prop, fixed in rows:
        lines.append(f"{ls + ' + ' + batch:<34} {prop:>18.3f} {fixed:>19.3f}")
        gains.append(prop / fixed - 1.0)
    avg = sum(gains) / len(gains)
    lines.append(f"average batch gain from proportional LSQ: {avg:+.1%}")
    save_result("ablation_lsq_scaling", "\n".join(lines))

    # Proportional LSQ must help the deep skew on average: without it the
    # batch thread's big ROB partition starves for load/store entries.
    assert avg > 0.0
