"""Legacy setuptools shim.

All project metadata lives in pyproject.toml (PEP 621); this file only
enables ``pip install -e .`` in environments without the ``wheel`` package,
where pip falls back to the ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
